"""Seeded load generator + post-run read-validity checker.

Four canonical mixes drive the service the way the paper's workload
classes drive the simulator:

- ``read_heavy``: mostly capped latest-loads with a trickle of stores —
  the web-serving shape.
- ``write_heavy``: store-dominated; with a reclamation watermark set on
  the server this is the mix that exercises VBR-style version dropping
  under live readers.
- ``lock_contention``: lock/unlock cycles (some with renaming unlocks)
  over a tiny hot key set — the paper's reduction/rename use-case as a
  service workload.
- ``snapshot_scan``: a writer stream plus scanners issuing capped
  latest-loads across the whole key space at one snapshot id — Table I's
  snapshot-isolation use-case over the wire.

Two driving modes: **closed-loop** (N workers, back-to-back requests —
throughput is capacity-bound) and **open-loop** (fixed arrival rate
independent of completions — latency includes queueing, the
overload-realistic shape).

Determinism: every worker derives its RNG from ``(seed, mix, worker)``
and allocates version ids from a worker-partitioned space
(``BASE + n*workers + worker``), so op streams are reproducible and no
two workers can ever collide on a ``STORE-VERSION`` — any
``version-exists`` reply is a real bug, and the generator counts it as
a protocol error.

The :class:`ReadChecker` gives the serving path the same
byte-level-correctness culture the simulator has: every store is
recorded *before* its request is sent (so a read can never observe a
version the checker has not heard of), and after the run every
versioned read is validated against that history — value match, exact
version match, and cap discipline for latest-loads.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ReproError
from ..obs.metrics import Histogram, MetricsRegistry
from . import protocol as P
from .client import AsyncServeClient

#: Versions 0 and 1 are reserved: 1 seeds every key before a run.
SETUP_VERSION = 1
BASE_VERSION = 2
#: Cap meaning "no cap" for latest-loads (well above any allocated id).
NO_CAP = 1 << 30

#: Latency bucket edges in microseconds (loopback TCP round trips).
LATENCY_BOUNDS_US = (
    100, 200, 400, 800, 1600, 3200, 6400, 12800,
    25600, 51200, 102400, 204800, 409600, 819200,
)


@dataclass(frozen=True)
class MixSpec:
    """Op weights of one mix (weights need not sum to 1)."""

    name: str
    keys: int
    read_latest: float = 0.0
    read_exact: float = 0.0
    store: float = 0.0
    lock_cycle: float = 0.0
    scan: float = 0.0
    rename_frac: float = 0.25  # renaming unlocks within lock cycles

    def weighted_ops(self) -> list[tuple[str, float]]:
        pairs = [
            ("read_latest", self.read_latest),
            ("read_exact", self.read_exact),
            ("store", self.store),
            ("lock_cycle", self.lock_cycle),
            ("scan", self.scan),
        ]
        out = [(name, w) for name, w in pairs if w > 0]
        if not out:
            raise ReproError(f"mix {self.name!r} has no positive op weight")
        return out


MIXES: dict[str, MixSpec] = {
    "read_heavy": MixSpec("read_heavy", keys=16, read_latest=0.70,
                          read_exact=0.20, store=0.10),
    "write_heavy": MixSpec("write_heavy", keys=16, read_latest=0.25,
                           read_exact=0.05, store=0.70),
    "lock_contention": MixSpec("lock_contention", keys=2, read_latest=0.25,
                               lock_cycle=0.65, store=0.10),
    "snapshot_scan": MixSpec("snapshot_scan", keys=12, read_latest=0.15,
                             store=0.35, scan=0.50),
}


class ReadChecker:
    """Post-run linearizability-style validation of versioned reads.

    ``record_store`` must be called *before* the store request is sent:
    recording first makes "read observed a version we never heard of" a
    sound violation even though workers race (a committed store
    happens-after its record, and a read can only observe committed
    versions).
    """

    def __init__(self) -> None:
        #: key -> version -> value recorded at send time.
        self.history: dict[str, dict[int, Any]] = {}
        #: (key, version, value, cap, detail) observations.
        self.reads: list[tuple[str, int, Any, int | None, str]] = []

    def record_store(self, key: str, version: int, value: Any) -> None:
        by_key = self.history.setdefault(key, {})
        if version in by_key:
            raise ReproError(
                f"loadgen bug: duplicate version {version} planned for {key!r}"
            )
        by_key[version] = value

    def record_read(
        self, key: str, version: int, value: Any,
        cap: int | None = None, detail: str = "",
    ) -> None:
        self.reads.append((key, version, value, cap, detail))

    def violations(self) -> list[str]:
        out = []
        for key, version, value, cap, detail in self.reads:
            tag = f"{detail or 'read'} {key!r} v{version}"
            if cap is not None and version > cap:
                out.append(f"{tag}: version above cap {cap}")
                continue
            expected = self.history.get(key, {}).get(version, _UNKNOWN)
            if expected is _UNKNOWN:
                out.append(f"{tag}: version never stored by this run")
            elif expected != value:
                out.append(
                    f"{tag}: value {value!r} != stored {expected!r}"
                )
        return out


_UNKNOWN = object()


@dataclass
class LoadReport:
    """Everything one mix run produced."""

    mix: str
    mode: str
    ops: int = 0
    ok: int = 0
    sheds: int = 0
    timeouts: int = 0
    protocol_errors: int = 0
    violations: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    latency: dict[str, Any] = field(default_factory=dict)
    reclaimed: int = 0

    @property
    def throughput(self) -> float:
        return self.ok / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def quantile_ms(self, q: float) -> float:
        """Bucketed latency quantile in milliseconds."""
        hist = Histogram("latency_us", LATENCY_BOUNDS_US)
        snap = self.latency
        if snap:
            hist.counts = list(snap["counts"])
            hist.count = snap["count"]
            hist.total = snap["sum"]
            hist.min = snap["min"]
            hist.max = snap["max"]
        return hist.quantile(q) / 1000.0


class LoadGen:
    """Drive one mix against a running server."""

    def __init__(
        self,
        host: str,
        port: int,
        mix: str | MixSpec,
        *,
        seed: int = 0,
        ops: int = 400,
        clients: int = 8,
        pool_size: int | None = None,
        open_rate: float | None = None,
        session_every: int = 32,
        deadline_ms: int = 5_000,
    ):
        self.host = host
        self.port = port
        self.mix = MIXES[mix] if isinstance(mix, str) else mix
        self.seed = seed
        self.ops = ops
        self.clients = clients
        self.pool_size = pool_size or min(clients, 8)
        self.open_rate = open_rate
        self.session_every = max(1, session_every)
        self.deadline_ms = deadline_ms
        self.checker = ReadChecker()
        self.metrics = MetricsRegistry()
        self._latency = self.metrics.histogram("latency_us", LATENCY_BOUNDS_US)
        self._next_n = [0] * clients  # per-worker version allocation counter
        self._recent: list[dict[str, list[int]]] = [
            {} for _ in range(clients)
        ]  # per-worker, current-session stores (safe exact-read targets)

    # -- version allocation ------------------------------------------------

    def _alloc(self, worker: int) -> int:
        n = self._next_n[worker]
        self._next_n[worker] = n + 1
        return BASE_VERSION + n * self.clients + worker

    def _frontier(self, worker: int) -> int:
        """The next id this worker would allocate (its session task id)."""
        return BASE_VERSION + self._next_n[worker] * self.clients + worker

    # -- the run -----------------------------------------------------------

    async def run(self) -> LoadReport:
        mode = "open" if self.open_rate else "closed"
        report = LoadReport(mix=self.mix.name, mode=mode)
        keys = [f"{self.mix.name}/k{i}" for i in range(self.mix.keys)]
        async with AsyncServeClient(
            self.host, self.port, pool_size=self.pool_size
        ) as client:
            # Seed every key so capped latest-loads always have a floor.
            for key in keys:
                value = f"{key}#{SETUP_VERSION}"
                self.checker.record_store(key, SETUP_VERSION, value)
                await client.store_version(key, SETUP_VERSION, value)
            start = time.perf_counter()
            per_worker = [
                self.ops // self.clients
                + (1 if w < self.ops % self.clients else 0)
                for w in range(self.clients)
            ]
            workers = [
                self._worker(client, w, per_worker[w], keys, report)
                for w in range(self.clients)
            ]
            await asyncio.gather(*workers)
            report.wall_seconds = time.perf_counter() - start
        report.violations = self.checker.violations()
        report.latency = self._latency.snapshot()
        return report

    async def _worker(
        self,
        client: AsyncServeClient,
        w: int,
        budget: int,
        keys: list[str],
        report: LoadReport,
    ) -> None:
        rng = random.Random(f"{self.seed}:{self.mix.name}:{w}")
        ops = self.mix.weighted_ops()
        names = [name for name, _ in ops]
        weights = [weight for _, weight in ops]
        interval = (
            self.clients / self.open_rate if self.open_rate else None
        )
        next_fire = time.perf_counter() + (rng.random() * interval if interval else 0)

        tid = self._frontier(w)
        await self._session_begin(client, tid, report)
        since_refresh = 0
        try:
            for _ in range(budget):
                if interval is not None:
                    delay = next_fire - time.perf_counter()
                    next_fire += interval
                    if delay > 0:
                        await asyncio.sleep(delay)
                if since_refresh >= self.session_every:
                    since_refresh = 0
                    new_tid = self._frontier(w)
                    if new_tid != tid:
                        # Begin-before-end: the floor never overtakes us.
                        await self._session_begin(client, new_tid, report)
                        await self._session_end(client, tid, report)
                        tid = new_tid
                        self._recent[w].clear()
                since_refresh += 1
                op = rng.choices(names, weights)[0]
                await self._one_op(client, w, op, rng, keys, tid, report)
        finally:
            await self._session_end(client, tid, report)

    async def _session_begin(self, client, tid, report) -> None:
        msg = await client.request_raw(P.OP_TASK_BEGIN, {"task": tid})
        if msg.code != P.OK:
            report.protocol_errors += 1

    async def _session_end(self, client, tid, report) -> None:
        try:
            msg = await client.request_raw(P.OP_TASK_END, {"task": tid})
        except (ReproError, ConnectionError):
            return
        if msg.code != P.OK:
            report.protocol_errors += 1

    # -- one operation -----------------------------------------------------

    async def _one_op(
        self, client, w: int, op: str, rng: random.Random,
        keys: list[str], tid: int, report: LoadReport,
    ) -> None:
        if op == "scan":
            cap = max(self._frontier(i) for i in range(self.clients))
            for key in keys:
                await self._timed(
                    client, report, P.OP_LOAD_LATEST,
                    {"key": key, "cap": cap, "deadline_ms": self.deadline_ms},
                    read_cap=cap, detail="scan",
                )
            return

        key = rng.choice(keys)
        if op == "read_latest":
            await self._timed(
                client, report, P.OP_LOAD_LATEST,
                {"key": key, "cap": NO_CAP, "deadline_ms": self.deadline_ms},
                read_cap=NO_CAP, detail="load-latest",
            )
        elif op == "read_exact":
            recent = self._recent[w].get(key)
            if not recent:
                await self._timed(
                    client, report, P.OP_LOAD_LATEST,
                    {"key": key, "cap": NO_CAP, "deadline_ms": self.deadline_ms},
                    read_cap=NO_CAP, detail="load-latest",
                )
                return
            version = rng.choice(recent)
            await self._timed(
                client, report, P.OP_LOAD_VERSION,
                {"key": key, "version": version, "deadline_ms": self.deadline_ms},
                expect_version=version, detail="load-version",
            )
        elif op == "store":
            version = self._alloc(w)
            value = f"{key}#{version}"
            self.checker.record_store(key, version, value)
            msg = await self._timed(
                client, report, P.OP_STORE_VERSION,
                {"key": key, "version": version, "value": value},
                detail="store-version",
            )
            if msg is not None and msg.code == P.OK:
                self._recent[w].setdefault(key, []).append(version)
                report.reclaimed += msg.body.get("reclaimed", 0)
        elif op == "lock_cycle":
            msg = await self._timed(
                client, report, P.OP_LOCK_LOAD_LATEST,
                {"key": key, "cap": NO_CAP, "task": tid,
                 "deadline_ms": self.deadline_ms},
                read_cap=NO_CAP, detail="lock-load-latest",
            )
            if msg is None or msg.code != P.OK:
                return
            version = msg.body["version"]
            body = {"key": key, "version": version, "task": tid,
                    "new_version": None}
            if rng.random() < self.mix.rename_frac:
                new_version = self._alloc(w)
                # A renaming unlock aliases the locked value under a new id.
                self.checker.record_store(key, new_version, msg.body["value"])
                body["new_version"] = new_version
            unlock = await self._timed(
                client, report, P.OP_UNLOCK_VERSION, body,
                detail="unlock-version",
            )
            if (
                unlock is not None and unlock.code == P.OK
                and body["new_version"] is not None
            ):
                self._recent[w].setdefault(key, []).append(body["new_version"])
        else:  # pragma: no cover - MixSpec.weighted_ops guards this
            raise ReproError(f"unknown op {op!r}")

    async def _timed(
        self, client, report: LoadReport, op: int, body: dict[str, Any],
        *, read_cap: int | None = None, expect_version: int | None = None,
        detail: str = "",
    ) -> P.Message | None:
        report.ops += 1
        start = time.perf_counter()
        try:
            msg = await client.request_raw(op, body)
        except (ReproError, ConnectionError) as exc:
            report.protocol_errors += 1
            self.metrics.counter("transport_errors").inc()
            self.metrics.counter(f"err:{type(exc).__name__}").inc()
            return None
        self._latency.observe((time.perf_counter() - start) * 1e6)
        if msg.code == P.OK:
            report.ok += 1
            self.metrics.counter("ok").inc()
            if read_cap is not None or expect_version is not None:
                version = msg.body.get("version")
                if expect_version is not None and version != expect_version:
                    report.violations.append(
                        f"{detail}: asked v{expect_version}, got v{version}"
                    )
                self.checker.record_read(
                    body["key"], version, msg.body.get("value"),
                    cap=read_cap, detail=detail,
                )
        elif msg.code == P.ERR_OVERLOAD:
            report.sheds += 1
            self.metrics.counter("shed").inc()
        elif msg.code == P.ERR_TIMEOUT:
            report.timeouts += 1
            self.metrics.counter("timeout").inc()
        else:
            report.protocol_errors += 1
            self.metrics.counter(f"unexpected:{msg.status_name}").inc()
        return msg


async def flood(
    host: str,
    port: int,
    *,
    requests: int = 80,
    deadline_ms: int = 300,
    pool_size: int = 4,
    key: str = "flood/k0",
) -> LoadReport:
    """Fire ``requests`` concurrent never-satisfiable loads at once.

    Every request parks server-side until its deadline (the version is
    never stored), so in-flight depth ramps to the admission limit
    instantly and everything beyond it must be shed — the overload
    sub-test of the self-benchmark.
    """
    report = LoadReport(mix="overload_flood", mode="open")
    async with AsyncServeClient(host, port, pool_size=pool_size) as client:
        start = time.perf_counter()

        async def one() -> None:
            report.ops += 1
            body = {"key": key, "version": NO_CAP, "deadline_ms": deadline_ms}
            try:
                msg = await client.request_raw(P.OP_LOAD_VERSION, body)
            except (ReproError, ConnectionError):
                report.protocol_errors += 1
                return
            if msg.code == P.ERR_OVERLOAD:
                report.sheds += 1
            elif msg.code == P.ERR_TIMEOUT:
                report.timeouts += 1
            elif msg.code == P.OK:
                report.ok += 1
            else:
                report.protocol_errors += 1

        await asyncio.gather(*(one() for _ in range(requests)))
        report.wall_seconds = time.perf_counter() - start
    return report
