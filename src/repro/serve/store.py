"""Hash-sharded MVCC store over software O-structures.

One :class:`ShardedStore` owns ``num_shards`` independent shards; each
shard maps string keys to one :class:`~repro.sw.ostructure.SWOStructure`
per key.  Shard routing is a stable CRC32 of the key — *not* Python's
salted ``hash()`` — so a key lands on the same shard across processes,
restarts and test runs (the loadgen's shard-routing determinism test
pins golden values).

Reclamation follows the version-based-reclamation (VBR) shape the
related MVCC work uses: task sessions (TASK-BEGIN / TASK-END frames)
advance a global *floor* — the lowest task id still live — and each
shard independently reclaims shadowed versions below that floor once
its stores-since-last-reclaim counter crosses a watermark.  Reclaiming
is done version-by-version through ``SWOStructure.drop_version`` (the
same entry point the simulator's GC mirror uses), keeping per key the
boundary version a ``LOAD-LATEST(floor)`` would return and skipping
anything locked; a drop that races with a fresh lock is skipped, never
forced.
"""

from __future__ import annotations

import threading
import zlib
from typing import Any

from ..errors import SimulationError
from ..sw.ostructure import SWOStructure


def shard_of(key: str, num_shards: int) -> int:
    """Stable shard index of ``key`` (CRC32, not the salted ``hash()``)."""
    return zlib.crc32(key.encode("utf-8")) % num_shards


class Shard:
    """One independent slice of the keyspace with its own reclamation."""

    def __init__(self, index: int, reclaim_watermark: int = 0):
        self.index = index
        #: Stores between reclamation passes; 0 disables reclamation.
        self.reclaim_watermark = reclaim_watermark
        self._lock = threading.Lock()
        self._ostructs: dict[str, SWOStructure] = {}
        self._stores_since_reclaim = 0
        self.reclaim_passes = 0
        self.reclaimed_versions = 0

    def ostructure(self, key: str) -> SWOStructure:
        """Get-or-create the O-structure backing ``key``."""
        with self._lock:
            o = self._ostructs.get(key)
            if o is None:
                o = self._ostructs[key] = SWOStructure(f"shard{self.index}/{key}")
            return o

    def get(self, key: str) -> SWOStructure | None:
        with self._lock:
            return self._ostructs.get(key)

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._ostructs)

    def note_store(self) -> bool:
        """Count one store; True when the watermark trips (reset included)."""
        if self.reclaim_watermark <= 0:
            return False
        with self._lock:
            self._stores_since_reclaim += 1
            if self._stores_since_reclaim >= self.reclaim_watermark:
                self._stores_since_reclaim = 0
                return True
            return False

    def reclaim(self, floor: int) -> int:
        """Drop shadowed versions no session at or above ``floor`` reads.

        Per key, keeps the highest version <= ``floor`` (the LOAD-LATEST
        target of the oldest live session) and everything above the
        floor; locked versions survive.  Returns versions dropped.
        """
        with self._lock:
            structs = list(self._ostructs.values())
        removed = 0
        for o in structs:
            versions = o.versions()
            boundary = max((v for v in versions if v <= floor), default=None)
            for v in versions:
                if v >= floor or v == boundary:
                    continue
                try:
                    removed += bool(o.drop_version(v))
                except SimulationError:
                    pass  # locked since we listed it; the lock holder wins
        with self._lock:
            self.reclaim_passes += 1
            self.reclaimed_versions += removed
        return removed


class TaskTracker:
    """Live task sessions; the minimum live id is the reclamation floor."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._live: dict[int, int] = {}  # task id -> begin count (refcounted)
        self.begun = 0
        self.ended = 0

    def begin(self, task_id: int) -> None:
        with self._lock:
            self._live[task_id] = self._live.get(task_id, 0) + 1
            self.begun += 1

    def end(self, task_id: int) -> bool:
        """True if the id was live; refcount supports duplicate begins."""
        with self._lock:
            count = self._live.get(task_id)
            if count is None:
                return False
            if count <= 1:
                del self._live[task_id]
            else:
                self._live[task_id] = count - 1
            self.ended += 1
            return True

    def floor(self) -> int | None:
        """Lowest live task id, or None when no session is open."""
        with self._lock:
            return min(self._live) if self._live else None

    def live_count(self) -> int:
        with self._lock:
            return len(self._live)


class ShardedStore:
    """The service's data plane: N shards + session-driven reclamation.

    All operations are **blocking** (they ride the O-structure condition
    variables) and are meant to be called from the server's worker
    threads; ``timeout`` seconds bound every wait.  ``deadline == 0``
    style probes are expressed by the server through the O-structures'
    ``try_*`` twins via :meth:`probe_version` / :meth:`probe_latest`.
    """

    def __init__(self, num_shards: int = 8, reclaim_watermark: int = 0):
        if num_shards <= 0:
            raise SimulationError("need at least one shard")
        self.num_shards = num_shards
        self.shards = [Shard(i, reclaim_watermark) for i in range(num_shards)]
        self.tracker = TaskTracker()

    # -- routing -----------------------------------------------------------

    def shard_for(self, key: str) -> Shard:
        return self.shards[shard_of(key, self.num_shards)]

    def ostructure(self, key: str) -> SWOStructure:
        return self.shard_for(key).ostructure(key)

    # -- the versioned ops -------------------------------------------------

    def load_version(self, key: str, version: int, timeout: float) -> Any:
        return self.ostructure(key).load_version(version, timeout=timeout)

    def load_latest(self, key: str, cap: int, timeout: float) -> tuple[int, Any]:
        return self.ostructure(key).load_latest(cap, timeout=timeout)

    def store_version(self, key: str, version: int, value: Any) -> int:
        """Store, then reclaim if this store tripped the shard watermark.

        Returns the number of versions reclaimed (usually 0).
        """
        shard = self.shard_for(key)
        shard.ostructure(key).store_version(version, value)
        if shard.note_store():
            floor = self.tracker.floor()
            if floor is not None:
                return shard.reclaim(floor)
        return 0

    def lock_load_version(
        self, key: str, version: int, task_id: int, timeout: float
    ) -> Any:
        return self.ostructure(key).lock_load_version(
            version, task_id, timeout=timeout
        )

    def lock_load_latest(
        self, key: str, cap: int, task_id: int, timeout: float
    ) -> tuple[int, Any]:
        return self.ostructure(key).lock_load_latest(cap, task_id, timeout=timeout)

    def unlock_version(
        self, key: str, version: int, task_id: int, new_version: int | None = None
    ) -> None:
        self.ostructure(key).unlock_version(version, task_id, new_version)

    # -- non-blocking probes (deadline == 0 requests) ----------------------

    def probe_version(self, key: str, version: int) -> tuple[Any] | None:
        return self.ostructure(key).try_load_version(version)

    def probe_latest(self, key: str, cap: int) -> tuple[int, Any] | None:
        return self.ostructure(key).try_load_latest(cap)

    def probe_lock_version(
        self, key: str, version: int, task_id: int
    ) -> tuple[Any] | None:
        return self.ostructure(key).try_lock_load_version(version, task_id)

    def probe_lock_latest(
        self, key: str, cap: int, task_id: int
    ) -> tuple[int, Any] | None:
        return self.ostructure(key).try_lock_load_latest(cap, task_id)

    # -- sessions ----------------------------------------------------------

    def task_begin(self, task_id: int) -> None:
        self.tracker.begin(task_id)

    def task_end(self, task_id: int) -> bool:
        return self.tracker.end(task_id)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """JSON-able counters (served by the STATS op)."""
        return {
            "shards": self.num_shards,
            "keys": sum(len(s.keys()) for s in self.shards),
            "versions": sum(
                len(s.get(k).versions()) for s in self.shards for k in s.keys()
            ),
            "reclaim_passes": sum(s.reclaim_passes for s in self.shards),
            "reclaimed_versions": sum(s.reclaimed_versions for s in self.shards),
            "live_tasks": self.tracker.live_count(),
            "tasks_begun": self.tracker.begun,
            "tasks_ended": self.tracker.ended,
        }
