"""Clients for the O-structure service.

:class:`AsyncServeClient` is the native surface: a pool of TCP
connections, each with a background reader matching responses to their
requests by ``request_id`` (the protocol multiplexes, so one connection
carries many in-flight operations).  Requests round-robin over the pool.

:class:`SyncServeClient` is a convenience wrapper that owns a private
event loop on a daemon thread and forwards every call through
``run_coroutine_threadsafe`` — same code path, blocking calling
convention — for scripts and tests that don't want to be async.

Error mapping: a non-OK response raises a typed :class:`ServeError`
subclass (:class:`ServeTimeout`, :class:`ServeOverload`, ...) carrying
the response body, so callers can tell shed from slow from absent with
an ``except`` clause instead of status-code comparisons.  Callers that
prefer inspecting statuses (the load generator does, since overload and
timeout are *data* to it) use ``request_raw`` and get the message back.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import Any

from ..errors import ReproError
from . import protocol as P


class ServeError(ReproError):
    """A request was answered with a non-OK status."""

    status = P.ERR_INTERNAL

    def __init__(self, message: str, body: dict[str, Any] | None = None):
        self.body = body or {}
        super().__init__(message)


class ServeTimeout(ServeError):
    status = P.ERR_TIMEOUT


class ServeOverload(ServeError):
    status = P.ERR_OVERLOAD


class ServeVersionNotFound(ServeError):
    status = P.ERR_VERSION_NOT_FOUND


class ServeVersionExists(ServeError):
    status = P.ERR_VERSION_EXISTS


class ServeNotLocked(ServeError):
    status = P.ERR_NOT_LOCKED


class ServeBadRequest(ServeError):
    status = P.ERR_BAD_REQUEST


class ServeShuttingDown(ServeError):
    status = P.ERR_SHUTTING_DOWN


_ERROR_TYPES = {
    cls.status: cls
    for cls in (
        ServeTimeout, ServeOverload, ServeVersionNotFound, ServeVersionExists,
        ServeNotLocked, ServeBadRequest, ServeShuttingDown,
    )
}


def error_for(msg: P.Message) -> ServeError:
    cls = _ERROR_TYPES.get(msg.code, ServeError)
    detail = msg.body.get("error", msg.status_name)
    return cls(f"{msg.status_name}: {detail}", msg.body)


class _Connection:
    """One socket: a writer, a reader task, and the in-flight future map."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.pending: dict[int, asyncio.Future] = {}
        self.decoder = P.FrameDecoder()
        self.reader_task = asyncio.ensure_future(self._read_loop())
        self.closed = False

    async def _read_loop(self) -> None:
        error: Exception = ConnectionResetError("connection closed by server")
        try:
            while True:
                data = await self.reader.read(65536)
                if not data:
                    break
                for msg in self.decoder.feed(data):
                    fut = self.pending.pop(msg.request_id, None)
                    if fut is not None and not fut.done():
                        fut.set_result(msg)
        except P.ProtocolError as exc:
            error = exc
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.closed = True
            for fut in self.pending.values():
                if not fut.done():
                    fut.set_exception(error)
            self.pending.clear()
            self.writer.close()

    async def close(self) -> None:
        self.reader_task.cancel()
        try:
            await self.reader_task
        except asyncio.CancelledError:
            pass
        self.writer.close()


class AsyncServeClient:
    """Connection-pooled async client."""

    def __init__(self, host: str, port: int, *, pool_size: int = 4):
        if pool_size <= 0:
            raise ReproError("pool_size must be positive")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self._conns: list[_Connection] = []
        self._ids = itertools.count(1)
        self._rr = itertools.count()

    async def connect(self) -> "AsyncServeClient":
        for _ in range(self.pool_size):
            reader, writer = await asyncio.open_connection(self.host, self.port)
            self._conns.append(_Connection(reader, writer))
        return self

    async def close(self) -> None:
        for conn in self._conns:
            await conn.close()
        self._conns.clear()

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- transport ---------------------------------------------------------

    async def request_raw(self, op: int, body: dict[str, Any]) -> P.Message:
        """Send one request; return the raw response message (any status)."""
        if not self._conns:
            raise ReproError("client is not connected")
        live = [c for c in self._conns if not c.closed]
        if not live:
            raise ConnectionResetError("all pooled connections are closed")
        conn = live[next(self._rr) % len(live)]
        request_id = next(self._ids) & 0xFFFFFFFF
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        conn.pending[request_id] = fut
        conn.writer.write(P.encode_request(op, request_id, body))
        await conn.writer.drain()
        return await fut

    async def request(self, op: int, body: dict[str, Any]) -> dict[str, Any]:
        """Send one request; return the OK body or raise a typed error."""
        msg = await self.request_raw(op, body)
        if msg.code != P.OK:
            raise error_for(msg)
        return msg.body

    # -- the op surface ----------------------------------------------------

    async def ping(self) -> None:
        await self.request(P.OP_PING, {})

    async def stats(self) -> dict[str, Any]:
        return await self.request(P.OP_STATS, {})

    async def task_begin(self, task_id: int) -> None:
        await self.request(P.OP_TASK_BEGIN, {"task": task_id})

    async def task_end(self, task_id: int) -> None:
        await self.request(P.OP_TASK_END, {"task": task_id})

    async def load_version(
        self, key: str, version: int, *, deadline_ms: int | None = None
    ) -> Any:
        body: dict[str, Any] = {"key": key, "version": version}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return (await self.request(P.OP_LOAD_VERSION, body))["value"]

    async def load_latest(
        self, key: str, cap: int, *, deadline_ms: int | None = None
    ) -> tuple[int, Any]:
        body: dict[str, Any] = {"key": key, "cap": cap}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        resp = await self.request(P.OP_LOAD_LATEST, body)
        return resp["version"], resp["value"]

    async def store_version(self, key: str, version: int, value: Any) -> int:
        resp = await self.request(
            P.OP_STORE_VERSION, {"key": key, "version": version, "value": value}
        )
        return resp.get("reclaimed", 0)

    async def lock_load_version(
        self, key: str, version: int, task_id: int, *, deadline_ms: int | None = None
    ) -> Any:
        body: dict[str, Any] = {"key": key, "version": version, "task": task_id}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return (await self.request(P.OP_LOCK_LOAD_VERSION, body))["value"]

    async def lock_load_latest(
        self, key: str, cap: int, task_id: int, *, deadline_ms: int | None = None
    ) -> tuple[int, Any]:
        body: dict[str, Any] = {"key": key, "cap": cap, "task": task_id}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        resp = await self.request(P.OP_LOCK_LOAD_LATEST, body)
        return resp["version"], resp["value"]

    async def unlock_version(
        self, key: str, version: int, task_id: int, new_version: int | None = None
    ) -> None:
        await self.request(
            P.OP_UNLOCK_VERSION,
            {
                "key": key, "version": version, "task": task_id,
                "new_version": new_version,
            },
        )


class SyncServeClient:
    """Blocking facade: the async client on a private loop thread."""

    def __init__(self, host: str, port: int, *, pool_size: int = 1,
                 call_timeout: float = 30.0):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="serve-client-loop", daemon=True
        )
        self._thread.start()
        self._call_timeout = call_timeout
        self._client = AsyncServeClient(host, port, pool_size=pool_size)
        self._run(self._client.connect())

    def _run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout=self._call_timeout
        )

    def close(self) -> None:
        self._run(self._client.close())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    def __enter__(self) -> "SyncServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def ping(self) -> None:
        self._run(self._client.ping())

    def stats(self) -> dict[str, Any]:
        return self._run(self._client.stats())

    def task_begin(self, task_id: int) -> None:
        self._run(self._client.task_begin(task_id))

    def task_end(self, task_id: int) -> None:
        self._run(self._client.task_end(task_id))

    def load_version(self, key: str, version: int, **kw) -> Any:
        return self._run(self._client.load_version(key, version, **kw))

    def load_latest(self, key: str, cap: int, **kw) -> tuple[int, Any]:
        return self._run(self._client.load_latest(key, cap, **kw))

    def store_version(self, key: str, version: int, value: Any) -> int:
        return self._run(self._client.store_version(key, version, value))

    def lock_load_version(self, key: str, version: int, task_id: int, **kw) -> Any:
        return self._run(self._client.lock_load_version(key, version, task_id, **kw))

    def lock_load_latest(self, key: str, cap: int, task_id: int, **kw) -> tuple[int, Any]:
        return self._run(self._client.lock_load_latest(key, cap, task_id, **kw))

    def unlock_version(
        self, key: str, version: int, task_id: int, new_version: int | None = None
    ) -> None:
        self._run(
            self._client.unlock_version(key, version, task_id, new_version)
        )
