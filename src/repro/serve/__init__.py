"""``repro.serve``: the software O-structure runtime as a network service.

The paper's Section II-C software prototype (:mod:`repro.sw`) is a
thread-safe MVCC cell; this package puts a fleet of them behind a
network boundary and measures the result like a datastore:

- :mod:`repro.serve.protocol` — length-prefixed frame codec mapping the
  paper's op vocabulary (the six versioned-memory ops plus TASK-BEGIN /
  TASK-END session frames) onto request/response messages with explicit
  error codes for timeout, overload, and version-not-found.
- :mod:`repro.serve.store` — a hash-sharded store of independent
  :class:`~repro.sw.ostructure.SWOStructure` keys with session-floor,
  watermark-driven version reclamation (the VBR shape).
- :mod:`repro.serve.server` — asyncio TCP front-end: bounded thread
  pool for the blocking ops, per-request deadlines mapped onto
  :class:`~repro.sw.ostructure.SWTimeout`, admission control that sheds
  with OVERLOAD instead of queueing unboundedly, graceful drain.
- :mod:`repro.serve.client` — pooled async client + sync wrapper.
- :mod:`repro.serve.loadgen` — seeded open/closed-loop load generator
  with four canonical mixes and a post-run read-validity checker.
- :mod:`repro.serve.cli` — ``python -m repro serve`` /
  ``python -m repro loadgen`` / ``serve --self-bench``.
"""

from .client import (
    AsyncServeClient,
    ServeError,
    ServeOverload,
    ServeTimeout,
    ServeVersionNotFound,
    SyncServeClient,
)
from .loadgen import MIXES, LoadGen, LoadReport, ReadChecker, flood
from .protocol import FrameDecoder, Message, ProtocolError
from .server import ServeServer, start_server
from .store import Shard, ShardedStore, TaskTracker, shard_of

__all__ = [
    "AsyncServeClient",
    "FrameDecoder",
    "LoadGen",
    "LoadReport",
    "Message",
    "MIXES",
    "ProtocolError",
    "ReadChecker",
    "ServeError",
    "ServeOverload",
    "ServeServer",
    "ServeTimeout",
    "ServeVersionNotFound",
    "Shard",
    "ShardedStore",
    "SyncServeClient",
    "TaskTracker",
    "flood",
    "shard_of",
    "start_server",
]
