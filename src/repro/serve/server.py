"""Asyncio TCP server exposing the sharded O-structure store.

Architecture: one asyncio event loop owns all sockets and framing; the
blocking O-structure operations (they park on condition variables) are
dispatched to a **bounded** thread pool via ``run_in_executor``.  Each
connection multiplexes: requests are read continuously, dispatched
concurrently, and responses are matched by ``request_id`` — so one
connection can keep many operations in flight, which is what makes the
overload semantics below real rather than theoretical.

Three disciplines the rest of the repo already enforces elsewhere:

- **Deadlines, not hangs.**  Every request carries ``deadline_ms``; it
  maps directly onto the O-structure blocking ``timeout`` and an expiry
  surfaces as an ``ERR_TIMEOUT`` response carrying the structured
  :class:`~repro.sw.ostructure.SWTimeout` context (address, wanted
  version, current latest, lock holder).  ``deadline_ms == 0`` means
  "probe, don't wait": the ``try_*`` twins answer immediately with
  ``ERR_VERSION_NOT_FOUND`` where the blocking form would park.
- **Shed, don't queue unboundedly.**  Admission control counts in-flight
  requests; past ``max_inflight`` the server replies ``ERR_OVERLOAD``
  from the event loop without touching the pool.  A shed request costs
  one frame decode and one frame encode — the cheap-rejection property
  load-shedding exists for.
- **Drain, don't drop.**  :meth:`ServeServer.drain` stops the listener,
  answers new requests with ``ERR_SHUTTING_DOWN``, waits (bounded) for
  in-flight operations to finish, then closes connections and the pool.
  Session frames left open by a disconnecting client are auto-ended so
  a vanished client cannot pin the reclamation floor forever.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..errors import (
    NotLockedError,
    ReproError,
    SimulationError,
    VersionExistsError,
)
from ..sw.ostructure import SWTimeout
from . import protocol as P
from .store import ShardedStore

#: Default per-request deadline when the client sends none.
DEFAULT_DEADLINE_MS = 5_000
#: Deadlines above this are clamped: a client must not pin a pool thread
#: for minutes on a version nobody will ever store.
MAX_DEADLINE_MS = 60_000


class ServerStats:
    """Plain counters; mutated only on the event-loop thread."""

    __slots__ = (
        "connections_opened", "connections_closed", "requests",
        "responses_ok", "responses_error", "shed", "timeouts",
        "protocol_errors", "auto_ended_sessions", "drained_inflight",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _Session:
    """Per-connection state: open task ids, for auto-end on disconnect."""

    __slots__ = ("open_tasks",)

    def __init__(self) -> None:
        self.open_tasks: set[int] = set()


def _want_int(body: dict[str, Any], field: str) -> int:
    value = body.get(field)
    if not isinstance(value, int) or isinstance(value, bool):
        raise P.ProtocolError(f"request field {field!r} must be an integer")
    return value


def _want_str(body: dict[str, Any], field: str) -> str:
    value = body.get(field)
    if not isinstance(value, str) or not value:
        raise P.ProtocolError(f"request field {field!r} must be a non-empty string")
    return value


class ServeServer:
    """The network front-end over one :class:`ShardedStore`."""

    def __init__(
        self,
        store: ShardedStore | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        threads: int = 8,
        max_inflight: int = 64,
        drain_timeout: float = 10.0,
    ):
        if threads <= 0 or max_inflight <= 0:
            raise SimulationError("threads and max_inflight must be positive")
        self.store = store if store is not None else ShardedStore()
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.drain_timeout = drain_timeout
        self.stats = ServerStats()
        self._pool = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="serve-op"
        )
        self._server: asyncio.AbstractServer | None = None
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def inflight(self) -> int:
        return self._inflight

    async def drain(self) -> bool:
        """Graceful shutdown; True if in-flight work finished in time."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        clean = True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self.drain_timeout)
        except asyncio.TimeoutError:
            clean = False
        self.stats.drained_inflight = self._inflight
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        self._pool.shutdown(wait=False, cancel_futures=True)
        return clean

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        self._writers.add(writer)
        self.stats.connections_opened += 1
        session = _Session()
        decoder = P.FrameDecoder()
        write_lock = asyncio.Lock()
        dispatches: set[asyncio.Task] = set()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    messages = decoder.feed(data)
                except P.ProtocolError as exc:
                    self.stats.protocol_errors += 1
                    await self._send(
                        writer, write_lock,
                        P.encode_response(
                            P.ERR_BAD_REQUEST, 0, {"error": str(exc)}
                        ),
                    )
                    break  # framing is untrustworthy from here on
                for msg in messages:
                    if msg.kind != P.KIND_REQUEST:
                        self.stats.protocol_errors += 1
                        await self._send(
                            writer, write_lock,
                            P.encode_response(
                                P.ERR_BAD_REQUEST, msg.request_id,
                                {"error": "expected a request frame"},
                            ),
                        )
                        continue
                    t = asyncio.ensure_future(
                        self._serve_request(msg, session, writer, write_lock)
                    )
                    dispatches.add(t)
                    t.add_done_callback(dispatches.discard)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            for t in list(dispatches):
                t.cancel()
            if dispatches:
                await asyncio.gather(*dispatches, return_exceptions=True)
            for task_id in sorted(session.open_tasks):
                self.store.task_end(task_id)
                self.stats.auto_ended_sessions += 1
            session.open_tasks.clear()
            self._writers.discard(writer)
            self._conn_tasks.discard(task)
            self.stats.connections_closed += 1
            writer.close()

    async def _send(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, frame: bytes
    ) -> None:
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(frame)
            try:
                await writer.drain()
            except ConnectionError:
                pass

    # -- request dispatch --------------------------------------------------

    async def _serve_request(
        self,
        msg: P.Message,
        session: _Session,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self.stats.requests += 1
        if self._draining:
            await self._send(
                writer, write_lock,
                P.encode_response(
                    P.ERR_SHUTTING_DOWN, msg.request_id,
                    {"error": "server is draining"},
                ),
            )
            self.stats.responses_error += 1
            return
        if self._inflight >= self.max_inflight:
            # Admission control: cheap rejection from the event loop.
            self.stats.shed += 1
            self.stats.responses_error += 1
            await self._send(
                writer, write_lock,
                P.encode_response(
                    P.ERR_OVERLOAD, msg.request_id,
                    {"error": "server over capacity", "inflight": self._inflight},
                ),
            )
            return
        self._inflight += 1
        self._idle.clear()
        try:
            status, body = await self._execute(msg, session)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
        if status == P.OK:
            self.stats.responses_ok += 1
        else:
            self.stats.responses_error += 1
            if status == P.ERR_TIMEOUT:
                self.stats.timeouts += 1
        await self._send(
            writer, write_lock, P.encode_response(status, msg.request_id, body)
        )

    async def _execute(
        self, msg: P.Message, session: _Session
    ) -> tuple[int, dict[str, Any]]:
        """Run one op; returns (status, response body).  Never raises."""
        try:
            return await self._execute_op(msg, session)
        except P.ProtocolError as exc:
            return P.ERR_BAD_REQUEST, {"error": str(exc)}
        except SWTimeout as exc:
            return P.ERR_TIMEOUT, {"error": str(exc), "context": exc.context}
        except VersionExistsError as exc:
            return P.ERR_VERSION_EXISTS, {"error": str(exc)}
        except NotLockedError as exc:
            return P.ERR_NOT_LOCKED, {"error": str(exc)}
        except ReproError as exc:
            return P.ERR_INTERNAL, {"error": str(exc)}

    async def _execute_op(
        self, msg: P.Message, session: _Session
    ) -> tuple[int, dict[str, Any]]:
        op, body = msg.code, msg.body
        loop = asyncio.get_running_loop()

        def blocking(fn, *args):
            return loop.run_in_executor(self._pool, fn, *args)

        if op == P.OP_PING:
            return P.OK, {}
        if op == P.OP_STATS:
            return P.OK, {"server": self.stats.snapshot(), "store": self.store.stats()}
        if op == P.OP_TASK_BEGIN:
            task_id = _want_int(body, "task")
            self.store.task_begin(task_id)
            session.open_tasks.add(task_id)
            return P.OK, {"floor": self.store.tracker.floor()}
        if op == P.OP_TASK_END:
            task_id = _want_int(body, "task")
            known = self.store.task_end(task_id)
            session.open_tasks.discard(task_id)
            if not known:
                return P.ERR_BAD_REQUEST, {"error": f"task {task_id} not live"}
            return P.OK, {"floor": self.store.tracker.floor()}

        key = _want_str(body, "key")
        deadline_ms = body.get("deadline_ms", DEFAULT_DEADLINE_MS)
        if not isinstance(deadline_ms, int) or isinstance(deadline_ms, bool) \
                or deadline_ms < 0:
            raise P.ProtocolError("deadline_ms must be a non-negative integer")
        timeout = min(deadline_ms, MAX_DEADLINE_MS) / 1000.0

        if op == P.OP_LOAD_VERSION:
            version = _want_int(body, "version")
            if deadline_ms == 0:
                hit = self.store.probe_version(key, version)
                if hit is None:
                    return P.ERR_VERSION_NOT_FOUND, {"key": key, "version": version}
                return P.OK, {"version": version, "value": hit[0]}
            value = await blocking(self.store.load_version, key, version, timeout)
            return P.OK, {"version": version, "value": value}

        if op == P.OP_LOAD_LATEST:
            cap = _want_int(body, "cap")
            if deadline_ms == 0:
                hit = self.store.probe_latest(key, cap)
                if hit is None:
                    return P.ERR_VERSION_NOT_FOUND, {"key": key, "cap": cap}
                return P.OK, {"version": hit[0], "value": hit[1]}
            version, value = await blocking(self.store.load_latest, key, cap, timeout)
            return P.OK, {"version": version, "value": value}

        if op == P.OP_STORE_VERSION:
            version = _want_int(body, "version")
            if "value" not in body:
                raise P.ProtocolError("store-version requires a 'value' field")
            reclaimed = await blocking(
                self.store.store_version, key, version, body["value"]
            )
            return P.OK, {"version": version, "reclaimed": reclaimed}

        if op == P.OP_LOCK_LOAD_VERSION:
            version = _want_int(body, "version")
            task_id = _want_int(body, "task")
            if deadline_ms == 0:
                hit = self.store.probe_lock_version(key, version, task_id)
                if hit is None:
                    return P.ERR_VERSION_NOT_FOUND, {"key": key, "version": version}
                return P.OK, {"version": version, "value": hit[0]}
            value = await blocking(
                self.store.lock_load_version, key, version, task_id, timeout
            )
            return P.OK, {"version": version, "value": value}

        if op == P.OP_LOCK_LOAD_LATEST:
            cap = _want_int(body, "cap")
            task_id = _want_int(body, "task")
            if deadline_ms == 0:
                hit = self.store.probe_lock_latest(key, cap, task_id)
                if hit is None:
                    return P.ERR_VERSION_NOT_FOUND, {"key": key, "cap": cap}
                return P.OK, {"version": hit[0], "value": hit[1]}
            version, value = await blocking(
                self.store.lock_load_latest, key, cap, task_id, timeout
            )
            return P.OK, {"version": version, "value": value}

        if op == P.OP_UNLOCK_VERSION:
            version = _want_int(body, "version")
            task_id = _want_int(body, "task")
            new_version = body.get("new_version")
            if new_version is not None and (
                not isinstance(new_version, int) or isinstance(new_version, bool)
            ):
                raise P.ProtocolError("new_version must be an integer when present")
            await blocking(
                self.store.unlock_version, key, version, task_id, new_version
            )
            return P.OK, {"version": version, "new_version": new_version}

        raise P.ProtocolError(f"unknown opcode {op}")


async def start_server(**kwargs) -> ServeServer:
    """Build and start a :class:`ServeServer` (ephemeral port by default)."""
    server = ServeServer(**kwargs)
    await server.start()
    return server
