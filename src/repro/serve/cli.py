"""``python -m repro serve`` / ``python -m repro loadgen``.

Three entry points:

- ``python -m repro serve --port 7270``: boot a server and run until
  interrupted (Ctrl-C drains gracefully).
- ``python -m repro loadgen --port 7270 --mix read_heavy``: drive a
  running server and print the latency/throughput table.
- ``python -m repro serve --self-bench --seed 0``: the one-command
  benchmark CI runs — boots a server in-process, drives all four mixes
  closed-loop plus one open-loop run, then an overload flood against a
  deliberately tiny server, and prints one row per run.  Exit status is
  the acceptance criterion: zero protocol errors, zero read-validity
  violations, a non-zero shed count in the overload sub-test, and clean
  drains everywhere.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Any

from ..harness.report import format_table
from .client import AsyncServeClient
from .loadgen import MIXES, LoadGen, LoadReport, flood
from .server import ServeServer
from .store import ShardedStore

#: Reclamation watermarks per self-bench mix: the storing mixes get one
#: so VBR-style dropping runs under live traffic; the snapshot and lock
#: mixes keep full history (scanners may hold arbitrarily old caps).
SELF_BENCH_WATERMARKS = {
    "read_heavy": 64,
    "write_heavy": 24,
    "lock_contention": 0,
    "snapshot_scan": 0,
}


def _report_row(report: LoadReport) -> list[Any]:
    return [
        report.mix,
        report.mode,
        report.ops,
        report.ok,
        report.sheds,
        report.timeouts,
        report.protocol_errors,
        len(report.violations),
        report.reclaimed,
        report.throughput,
        report.quantile_ms(0.50),
        report.quantile_ms(0.95),
        report.quantile_ms(0.99),
    ]


_HEADERS = (
    "mix", "mode", "ops", "ok", "shed", "timeout", "proto_err",
    "violations", "reclaimed", "ops/s", "p50_ms", "p95_ms", "p99_ms",
)


async def _bench_one_mix(
    mix: str, *, seed: int, ops: int, clients: int,
    open_rate: float | None = None,
) -> tuple[LoadReport, bool, int]:
    """One mix against a fresh in-process server; returns (report, clean
    drain, server-side protocol errors)."""
    store = ShardedStore(
        num_shards=8, reclaim_watermark=SELF_BENCH_WATERMARKS.get(mix, 0)
    )
    server = ServeServer(store, threads=8, max_inflight=64)
    await server.start()
    try:
        gen = LoadGen(
            server.host, server.port, mix,
            seed=seed, ops=ops, clients=clients, open_rate=open_rate,
        )
        report = await gen.run()
    finally:
        clean = await server.drain()
    return report, clean, server.stats.protocol_errors


async def _bench_overload(*, seed: int) -> tuple[LoadReport, bool, bool]:
    """The overload sub-test: flood a tiny server, then prove liveness.

    Returns (flood report, server stayed live, clean drain).
    """
    server = ServeServer(ShardedStore(num_shards=2), threads=2, max_inflight=6)
    await server.start()
    live = False
    try:
        report = await flood(
            server.host, server.port,
            requests=64 + (seed % 7), deadline_ms=250, pool_size=4,
        )
        # The server must still answer normal traffic after the storm.
        async with AsyncServeClient(server.host, server.port, pool_size=1) as c:
            await c.store_version("after/storm", 1, "still-alive")
            live = (await c.load_version("after/storm", 1)) == "still-alive"
        report.sheds = max(report.sheds, server.stats.shed)
    finally:
        clean = await server.drain()
    return report, live, clean


async def _self_bench(seed: int, ops: int, clients: int) -> tuple[str, int]:
    rows: list[list[Any]] = []
    failures: list[str] = []

    for mix in ("read_heavy", "write_heavy", "lock_contention", "snapshot_scan"):
        report, clean, server_errors = await _bench_one_mix(
            mix, seed=seed, ops=ops, clients=clients
        )
        rows.append(_report_row(report))
        if report.protocol_errors or server_errors:
            failures.append(
                f"{mix}: {report.protocol_errors} client / "
                f"{server_errors} server protocol error(s)"
            )
        if report.violations:
            failures.append(
                f"{mix}: {len(report.violations)} read-validity violation(s); "
                f"first: {report.violations[0]}"
            )
        if not clean:
            failures.append(f"{mix}: server did not drain cleanly")

    # One open-loop run: latency now includes queueing delay.
    report, clean, server_errors = await _bench_one_mix(
        "read_heavy", seed=seed, ops=ops, clients=clients,
        open_rate=max(200.0, ops / 2),
    )
    rows.append(_report_row(report))
    if report.protocol_errors or server_errors or report.violations:
        failures.append("read_heavy(open): errors or violations")
    if not clean:
        failures.append("read_heavy(open): server did not drain cleanly")

    overload, live, clean = await _bench_overload(seed=seed)
    rows.append(_report_row(overload))
    if overload.sheds <= 0:
        failures.append("overload flood shed nothing — admission control inert")
    if overload.protocol_errors:
        failures.append(
            f"overload flood: {overload.protocol_errors} protocol error(s)"
        )
    if not live:
        failures.append("server did not answer normal traffic after the flood")
    if not clean:
        failures.append("overload server did not drain cleanly")

    text = format_table(
        _HEADERS, rows,
        title=f"repro.serve self-benchmark (seed {seed}, {ops} ops/mix, "
              f"{clients} clients)",
    )
    if failures:
        text += "\n\nFAILURES:\n" + "\n".join(f"  - {f}" for f in failures)
    else:
        text += (
            "\n\nall mixes clean: 0 protocol errors, 0 read-validity "
            f"violations; overload shed {overload.sheds} request(s) and "
            "drained cleanly"
        )
    return text, (1 if failures else 0)


async def _serve_forever(args) -> int:
    store = ShardedStore(
        num_shards=args.shards, reclaim_watermark=args.watermark
    )
    server = ServeServer(
        store, host=args.host, port=args.port,
        threads=args.threads, max_inflight=args.max_inflight,
    )
    await server.start()
    print(
        f"repro.serve listening on {server.host}:{server.port} "
        f"({args.shards} shards, {args.threads} op threads, "
        f"max {args.max_inflight} in flight)"
    )
    try:
        await asyncio.Event().wait()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        print("draining...")
        clean = await server.drain()
        print("drained cleanly" if clean else "drain timed out")
    return 0


def main_serve(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve the sharded O-structure store over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7270)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--threads", type=int, default=8,
                        help="blocking-op worker threads")
    parser.add_argument("--max-inflight", type=int, default=64,
                        help="admission limit before OVERLOAD shedding")
    parser.add_argument("--watermark", type=int, default=0,
                        help="per-shard stores between reclamation passes "
                             "(0 = keep all versions)")
    parser.add_argument("--self-bench", action="store_true",
                        help="boot in-process, run all load mixes + the "
                             "overload sub-test, print the table, exit")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ops", type=int, default=600,
                        help="self-bench operations per mix")
    parser.add_argument("--clients", type=int, default=8)
    args = parser.parse_args(argv)

    if args.self_bench:
        text, code = asyncio.run(_self_bench(args.seed, args.ops, args.clients))
        print(text)
        return code
    try:
        return asyncio.run(_serve_forever(args))
    except KeyboardInterrupt:
        return 0


def main_loadgen(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description="Drive a running repro.serve server and report latency.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7270)
    parser.add_argument("--mix", default="read_heavy", choices=sorted(MIXES))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ops", type=int, default=600)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--open-rate", type=float, default=None,
                        help="open-loop arrival rate in ops/s "
                             "(default: closed loop)")
    parser.add_argument("--deadline-ms", type=int, default=5000)
    args = parser.parse_args(argv)

    async def run() -> tuple[str, int]:
        gen = LoadGen(
            args.host, args.port, args.mix,
            seed=args.seed, ops=args.ops, clients=args.clients,
            open_rate=args.open_rate, deadline_ms=args.deadline_ms,
        )
        report = await gen.run()
        text = format_table(
            _HEADERS, [_report_row(report)],
            title=f"loadgen {args.mix} against {args.host}:{args.port}",
        )
        if report.violations:
            text += "\n\nread-validity violations:\n" + "\n".join(
                f"  - {v}" for v in report.violations[:20]
            )
        bad = report.protocol_errors or report.violations
        return text, (1 if bad else 0)

    text, code = asyncio.run(run())
    print(text)
    return code
