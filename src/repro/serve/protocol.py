"""Wire protocol for the O-structure service: length-prefixed frames.

Every message on the wire is one *frame*::

    uint32 (big-endian)   payload length N (bounded by MAX_FRAME)
    N bytes               payload

and every payload is a fixed 8-byte header followed by a JSON body::

    uint16  magic         0x4F56 ("OV", O-structure Versioning)
    uint8   kind          0 = request, 1 = response
    uint8   code          opcode (requests) or status (responses)
    uint32  request_id    echoed verbatim in the matching response
    bytes   body          UTF-8 JSON object (may be empty == ``{}``)

The opcodes map the paper's Section II-A operation vocabulary one-to-one
onto the wire — the six versioned-memory ops plus the TASK-BEGIN /
TASK-END session frames that drive reclamation — so a protocol trace
reads like an O-structure program.  Responses carry explicit error codes
(timeout, overload, version-not-found, ...) instead of overloading one
failure shape; admission control and deadline enforcement in
:mod:`repro.serve.server` depend on the client being able to tell
"shed" from "slow" from "absent".

Framing errors (bad magic, oversized length, truncated payload,
non-JSON body) raise :class:`ProtocolError`; the server answers with
``ERR_BAD_REQUEST`` where a request id is recoverable and closes the
connection, because nothing after a framing error can be trusted.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import ReproError

MAGIC = 0x4F56
#: Frames above this payload size are rejected outright: a garbage or
#: malicious length prefix must not make the peer buffer gigabytes.
MAX_FRAME = 1 << 20

_LEN = struct.Struct(">I")
_HEADER = struct.Struct(">HBBI")

KIND_REQUEST = 0
KIND_RESPONSE = 1

# -- opcodes (the paper's op vocabulary, plus session frames) -------------

OP_LOAD_VERSION = 1
OP_LOAD_LATEST = 2
OP_STORE_VERSION = 3
OP_LOCK_LOAD_VERSION = 4
OP_LOCK_LOAD_LATEST = 5
OP_UNLOCK_VERSION = 6
OP_TASK_BEGIN = 7
OP_TASK_END = 8
OP_PING = 9
OP_STATS = 10

OP_NAMES = {
    OP_LOAD_VERSION: "load-version",
    OP_LOAD_LATEST: "load-latest",
    OP_STORE_VERSION: "store-version",
    OP_LOCK_LOAD_VERSION: "lock-load-version",
    OP_LOCK_LOAD_LATEST: "lock-load-latest",
    OP_UNLOCK_VERSION: "unlock-version",
    OP_TASK_BEGIN: "task-begin",
    OP_TASK_END: "task-end",
    OP_PING: "ping",
    OP_STATS: "stats",
}

# -- response status codes ------------------------------------------------

OK = 0
ERR_TIMEOUT = 1
ERR_OVERLOAD = 2
ERR_VERSION_NOT_FOUND = 3
ERR_VERSION_EXISTS = 4
ERR_NOT_LOCKED = 5
ERR_BAD_REQUEST = 6
ERR_SHUTTING_DOWN = 7
ERR_INTERNAL = 8

STATUS_NAMES = {
    OK: "ok",
    ERR_TIMEOUT: "timeout",
    ERR_OVERLOAD: "overload",
    ERR_VERSION_NOT_FOUND: "version-not-found",
    ERR_VERSION_EXISTS: "version-exists",
    ERR_NOT_LOCKED: "not-locked",
    ERR_BAD_REQUEST: "bad-request",
    ERR_SHUTTING_DOWN: "shutting-down",
    ERR_INTERNAL: "internal-error",
}


class ProtocolError(ReproError):
    """The byte stream violated the framing or header contract."""


@dataclass(frozen=True)
class Message:
    """One decoded frame; ``code`` is an opcode or a status by ``kind``."""

    kind: int
    code: int
    request_id: int
    body: dict[str, Any] = field(default_factory=dict)

    @property
    def op_name(self) -> str:
        return OP_NAMES.get(self.code, f"op-{self.code}")

    @property
    def status_name(self) -> str:
        return STATUS_NAMES.get(self.code, f"status-{self.code}")


def encode(kind: int, code: int, request_id: int, body: dict[str, Any] | None = None) -> bytes:
    """Encode one frame, length prefix included."""
    if not 0 <= code <= 0xFF:
        raise ProtocolError(f"code {code} does not fit the uint8 code field")
    if not 0 <= request_id <= 0xFFFFFFFF:
        raise ProtocolError(f"request id {request_id} does not fit uint32")
    try:
        payload_body = json.dumps(
            body or {}, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"body is not JSON-encodable: {exc}") from exc
    payload = _HEADER.pack(MAGIC, kind, code, request_id) + payload_body
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame payload {len(payload)} bytes exceeds MAX_FRAME {MAX_FRAME}"
        )
    return _LEN.pack(len(payload)) + payload


def encode_request(op: int, request_id: int, body: dict[str, Any] | None = None) -> bytes:
    return encode(KIND_REQUEST, op, request_id, body)


def encode_response(
    status: int, request_id: int, body: dict[str, Any] | None = None
) -> bytes:
    return encode(KIND_RESPONSE, status, request_id, body)


def _decode_payload(payload: bytes) -> Message:
    if len(payload) < _HEADER.size:
        raise ProtocolError(
            f"payload truncated: {len(payload)} bytes < {_HEADER.size}-byte header"
        )
    magic, kind, code, request_id = _HEADER.unpack_from(payload)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:04X} (expected 0x{MAGIC:04X})")
    if kind not in (KIND_REQUEST, KIND_RESPONSE):
        raise ProtocolError(f"unknown frame kind {kind}")
    raw_body = payload[_HEADER.size:]
    if raw_body:
        try:
            body = json.loads(raw_body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise ProtocolError(
                f"frame body must be a JSON object, got {type(body).__name__}"
            )
    else:
        body = {}
    return Message(kind=kind, code=code, request_id=request_id, body=body)


class FrameDecoder:
    """Incremental decoder: feed arbitrary chunks, get whole messages.

    Both ends of the connection own one decoder per peer and call
    :meth:`feed` with whatever the transport handed them; partial frames
    are buffered until complete.  Any framing violation raises
    :class:`ProtocolError` and poisons the decoder — resynchronising
    inside a corrupt byte stream silently would hide data corruption, so
    the connection must be torn down instead.
    """

    __slots__ = ("_buf", "_poisoned")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> list[Message]:
        if self._poisoned:
            raise ProtocolError("decoder poisoned by an earlier framing error")
        self._buf.extend(data)
        out: list[Message] = []
        try:
            while True:
                if len(self._buf) < _LEN.size:
                    break
                (length,) = _LEN.unpack_from(self._buf)
                if length > MAX_FRAME:
                    raise ProtocolError(
                        f"frame length {length} exceeds MAX_FRAME {MAX_FRAME}"
                    )
                if length < _HEADER.size:
                    raise ProtocolError(
                        f"frame length {length} below {_HEADER.size}-byte header"
                    )
                if len(self._buf) < _LEN.size + length:
                    break
                payload = bytes(self._buf[_LEN.size:_LEN.size + length])
                del self._buf[:_LEN.size + length]
                out.append(_decode_payload(payload))
        except ProtocolError:
            self._poisoned = True
            raise
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buf)


def decode_stream(data: bytes) -> Iterator[Message]:
    """Decode a complete byte string; trailing partial frames raise."""
    dec = FrameDecoder()
    yield from dec.feed(data)
    if dec.pending_bytes:
        raise ProtocolError(
            f"{dec.pending_bytes} trailing byte(s) form no complete frame"
        )
