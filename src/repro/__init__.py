"""repro — reproduction of *Architectural Support for Unlimited Memory
Versioning and Renaming* (Gilad, Mayzels, Raab, Oskin, Etsion; IPDPS 2018).

The package provides:

- a trace-driven multicore simulator with the paper's Table II platform
  (:mod:`repro.sim`),
- the O-structure microarchitecture — version blocks, compressed cache
  lines, direct/full lookup, locking, garbage collection
  (:mod:`repro.ostruct`),
- the task runtime and the Figure 1 library API (:mod:`repro.runtime`),
- the six evaluation workloads (:mod:`repro.workloads`),
- a software (real threads) O-structure runtime (:mod:`repro.sw`),
- the experiment harness regenerating every figure (:mod:`repro.harness`),
- a differential-oracle + invariant sanitizer (:mod:`repro.check`,
  enabled with ``MachineConfig(checked=True)`` or ``--check``),
- a deterministic fault-injection framework with graceful degradation
  and live deadlock recovery (:mod:`repro.faults`, armed with
  ``MachineConfig(faults=..., watchdog_cycles=...)``).

Quickstart::

    from repro import Machine, MachineConfig, Task, Versioned

    def producer(tid, cell):
        yield cell.store_ver(tid, 42)

    def consumer(tid, cell):
        value = yield cell.load_ver(0)   # blocks until version 0 exists
        return value

    m = Machine(MachineConfig(num_cores=2))
    cell = Versioned(m.heap.alloc_versioned(1))
    tasks = [Task(0, producer, cell), Task(1, consumer, cell)]
    m.submit(tasks)
    stats = m.run()
    assert tasks[1].result == 42
"""

from .config import CacheConfig, MachineConfig, TABLE2
from .errors import (
    AllocationError,
    ConfigError,
    DeadlockError,
    FreeListExhausted,
    NotLockedError,
    ProtectionFault,
    ReproError,
    SimulationError,
    SweepFailure,
    VersionExistsError,
)
from .faults import FaultSpec, random_plan
from .runtime.task import Task, TaskTracker
from .runtime.scheduler import StaticScheduler
from .runtime.versioned import Versioned
from .runtime.istructures import IStructure, MStructure, new_istructure, new_mstructure
from .runtime.rwlock import SimRWLock
from .sim.machine import Machine, run_tasks
from .sim.stats import SimStats
from .sim.trace import Tracer
from .check import CheckViolation, Sanitizer, check_invariants

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "MachineConfig",
    "TABLE2",
    "Machine",
    "run_tasks",
    "SimStats",
    "Task",
    "TaskTracker",
    "StaticScheduler",
    "Versioned",
    "IStructure",
    "MStructure",
    "new_istructure",
    "new_mstructure",
    "SimRWLock",
    "Tracer",
    "CheckViolation",
    "Sanitizer",
    "check_invariants",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "DeadlockError",
    "ProtectionFault",
    "VersionExistsError",
    "NotLockedError",
    "FreeListExhausted",
    "AllocationError",
    "SweepFailure",
    "FaultSpec",
    "random_plan",
    "__version__",
]
