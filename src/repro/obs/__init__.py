"""Observability: metrics, span recording, Perfetto export, critical path.

Four pieces, composable and all optional:

- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`): counters, gauges
  and fixed-bucket histograms for the distributional questions the
  aggregate :class:`~repro.sim.stats.SimStats` cannot answer — version-
  list walk length, compressed-line occupancy, GC reclamation lag,
  lock-wait time, free-list depth.  Enable with
  ``MachineConfig(metrics=True)`` (or :func:`attach_metrics` on a built
  machine); disabled, every instrumented site is a single attribute
  check.
- :class:`SpanRecorder` (:mod:`repro.obs.recorder`): interval capture of
  task executions, GC phases and watchdog recoveries, plus the version
  produce→consume edges of the run.
- :func:`chrome_trace` / :func:`write_chrome_trace`
  (:mod:`repro.obs.perfetto`): the recorder as Chrome trace-event JSON,
  loadable at ``ui.perfetto.dev``.
- :func:`critical_path` (:mod:`repro.obs.critpath`): the longest
  weighted dependency chain through the recorded task DAG.

The ``python -m repro trace`` CLI (:mod:`repro.obs.cli`) drives all four
against any workload.
"""

from .attach import attach_metrics
from .critpath import critical_path, dependency_edges, format_critical_path
from .metrics import Gauge, Histogram, MetricCounter, MetricsRegistry
from .perfetto import chrome_trace, write_chrome_trace
from .recorder import GcSpan, RecoveryEvent, SpanRecorder, TaskSpan

__all__ = [
    "attach_metrics",
    "chrome_trace",
    "critical_path",
    "dependency_edges",
    "format_critical_path",
    "Gauge",
    "GcSpan",
    "Histogram",
    "MetricCounter",
    "MetricsRegistry",
    "RecoveryEvent",
    "SpanRecorder",
    "TaskSpan",
    "write_chrome_trace",
]
