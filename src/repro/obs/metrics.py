"""Metrics registry: counters, gauges and fixed-bucket histograms.

The paper's evaluation (Section IV) is entirely about *where cycles go*
— direct vs. full lookups, version-list walk lengths, GC pressure, stall
time — but aggregate :class:`~repro.sim.stats.SimStats` counters cannot
answer distributional questions ("how long do version lists get?", "how
stale is a shadowed block when it is finally reclaimed?").  This module
provides the instruments; :mod:`repro.obs.attach` wires a registry into
a machine.

Design constraints:

- **Disabled must be free.**  Instrumented hot paths (the manager's
  lookup and allocation paths, the core's stall-resolution path) hold a
  ``metrics`` attribute that is ``None`` by default; the entire disabled
  path is one attribute load plus an ``is not None`` check, which is
  what keeps the ``repro bench --compare`` perf gate green.
- **Fixed buckets.**  Histograms never allocate per observation: bucket
  bounds are chosen at construction and ``observe`` is a bisect plus an
  increment.  Bounds are upper-inclusive; the last bucket is the
  overflow bucket (``> bounds[-1]``).
- **JSON-able snapshots.**  ``snapshot()`` returns plain dicts of plain
  scalars so a metrics snapshot survives the sweep runner's result
  cache and the process pool byte-identically.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Sequence


class MetricCounter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A sampled level: tracks last, min, max and sample count."""

    __slots__ = ("name", "last", "min", "max", "samples")

    def __init__(self, name: str):
        self.name = name
        self.last: float | None = None
        self.min: float | None = None
        self.max: float | None = None
        self.samples = 0

    def set(self, value: float) -> None:
        self.last = value
        self.samples += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> dict[str, Any]:
        return {
            "last": self.last,
            "min": self.min,
            "max": self.max,
            "samples": self.samples,
        }


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max sidecars.

    ``bounds`` are ascending upper-inclusive bucket edges; an
    observation lands in the first bucket whose bound is >= the value,
    or in the final overflow bucket.  ``counts`` therefore has
    ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]):
        edges = tuple(bounds)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(f"histogram {name!r} needs strictly ascending bounds")
        self.name = name
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile sample.

        A bucketed estimate (exact values are not retained); the
        overflow bucket reports the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                if i < len(self.bounds):
                    return float(self.bounds[i])
                return float(self.max if self.max is not None else self.bounds[-1])
        return float(self.max if self.max is not None else self.bounds[-1])

    def snapshot(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


#: Default bucket edges of the named instruments.  Walk lengths and line
#: occupancy are small integers; the cycle-valued instruments use a
#: coarse geometric ladder (distribution shape, not exact percentiles).
WALK_LENGTH_BOUNDS = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128)
LINE_OCCUPANCY_BOUNDS = (1, 2, 3, 4, 5, 6, 7, 8)
GC_LAG_BOUNDS = (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)
LOCK_WAIT_BOUNDS = (4, 16, 64, 256, 1024, 4096, 16384, 65536)
FREE_DEPTH_BOUNDS = (8, 32, 128, 512, 2048, 8192, 32768, 131072)


class MetricsRegistry:
    """All instruments of one machine, addressable by attribute or name.

    The five named instruments of the paper's evaluation questions are
    created eagerly so call sites can hold direct references:

    ``walk_length``
        Version blocks visited per full lookup (Section III-A's cost of
        missing the compressed line).
    ``line_occupancy``
        Entries resident in a compressed line after each install (how
        full the 8-slot lines of Figure 3 actually run).
    ``gc_lag``
        Cycles between a version becoming shadowed and its block being
        reclaimed — the reclamation-lag distribution that bounded-
        multiversion-GC work states its guarantees over.
    ``lock_wait``
        Cycles a core spent parked per resolved stall (version waits
        and rwlock queue waits).
    ``free_depth``
        Free-list depth sampled at every version-block allocation.
    """

    def __init__(self) -> None:
        self._counters: dict[str, MetricCounter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.walk_length = self.histogram("walk_length", WALK_LENGTH_BOUNDS)
        self.line_occupancy = self.histogram(
            "line_occupancy", LINE_OCCUPANCY_BOUNDS
        )
        self.gc_lag = self.histogram("gc_lag", GC_LAG_BOUNDS)
        self.lock_wait = self.histogram("lock_wait", LOCK_WAIT_BOUNDS)
        self.free_depth = self.histogram("free_depth", FREE_DEPTH_BOUNDS)
        self.free_depth_gauge = self.gauge("free_depth")

    # -- registration -----------------------------------------------------

    def counter(self, name: str) -> MetricCounter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = MetricCounter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        elif tuple(bounds) != h.bounds:
            raise ValueError(f"histogram {name!r} re-registered with new bounds")
        return h

    # -- snapshots --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict, JSON-able copy of every instrument."""
        return {
            "counters": {n: c.snapshot() for n, c in sorted(self._counters.items())},
            "gauges": {n: g.snapshot() for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }
