"""``python -m repro trace``: record one workload run for analysis.

Runs a single workload variant with the full observability stack
attached — metrics registry, span recorder, chained op tracer — then
writes a Perfetto-loadable Chrome trace (``--perfetto``), a metrics
snapshot (``--metrics``), and prints the span summary, the rendered
metrics, and the critical-path analysis::

    python -m repro trace binary_tree --perfetto out.json --metrics m.json

The default free-list knobs (``--free-blocks 96 --watermark 64
--refill-blocks 256``) keep the version-block pool under pressure so the
garbage collector actually runs and the GC-lag histogram fills — the
same idea as the ``gc`` experiment.  ``--watchdog`` arms the live
deadlock watchdog (its recoveries appear on the trace's watchdog track)
and ``--fault KIND:AT[:VALUE[:ARG]]`` injects a deterministic fault plan
(see :mod:`repro.faults`), which is how a *deadlocking* or *recovering*
run is produced on purpose for timeline inspection — e.g.::

    python -m repro trace linked_list --mix 1R-1W --watchdog 2000 \
        --fault drop-wake:1:2 --perfetto hang.json

drops two consecutive waiter wake-ups, so the trace shows the stall, the
watchdog trip, and the kick that re-delivers the wake.

A run that deadlocks or exhausts the free list still exports everything
recorded up to the hang — the timeline of a deadlock is the point — and
exits non-zero after printing the wait-graph post-mortem.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from ..config import TABLE2
from ..errors import ConfigError, DeadlockError, FreeListExhausted
from ..faults import FaultSpec
from ..harness.presets import get_scale
from ..harness.report import format_metrics
from ..harness.sweeps import (
    MIXES,
    _IRREGULAR_MODULES,
    _REGULAR_MODULES,
    _run_irregular,
    _run_regular,
)
from ..sim.machine import add_machine_observer, remove_machine_observer
from ..workloads.opgen import READ_INTENSIVE
from .critpath import critical_path, format_critical_path
from .recorder import SpanRecorder

WORKLOADS = sorted(_IRREGULAR_MODULES) + sorted(_REGULAR_MODULES)


def _parse_fault(text: str) -> FaultSpec:
    """``KIND:AT[:SPAN[:VALUE[:ARG]]]`` → :class:`FaultSpec`.

    Field order matches the :class:`~repro.faults.FaultSpec` dataclass;
    trailing fields default like the dataclass does.
    """
    parts = text.split(":")
    kind = parts[0]
    try:
        nums = [int(p) for p in parts[1:]]
    except ValueError:
        raise ConfigError(f"fault spec {text!r}: trigger fields must be integers")
    if len(nums) > 4:
        raise ConfigError(f"fault spec {text!r}: too many fields")
    at = nums[0] if len(nums) > 0 else 1
    span = nums[1] if len(nums) > 1 else 1
    value = nums[2] if len(nums) > 2 else 0
    arg = nums[3] if len(nums) > 3 else 0
    return FaultSpec(kind, at=at, span=span, value=value, arg=arg)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Record one observable workload run (Perfetto + metrics).",
    )
    parser.add_argument("workload", choices=WORKLOADS, help="workload to run")
    parser.add_argument(
        "--perfetto", metavar="PATH",
        help="write a Chrome trace-event JSON (open at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", help="write the metrics snapshot as JSON"
    )
    parser.add_argument(
        "--scale", default="quick", choices=("quick", "paper"),
        help="workload scale (default quick)",
    )
    parser.add_argument(
        "--cores", type=int, default=8, help="simulated cores (default 8)"
    )
    parser.add_argument(
        "--size", default="small", choices=("small", "large"),
        help="structure size preset (default small)",
    )
    parser.add_argument(
        "--mix", default=READ_INTENSIVE.name, choices=sorted(MIXES),
        help="op mix for the irregular structures",
    )
    parser.add_argument(
        "--ops", type=int, default=None, metavar="N",
        help="override the operation count of irregular workloads",
    )
    parser.add_argument(
        "--free-blocks", type=int, default=96, metavar="N",
        help="initial version-block free list (small => GC pressure)",
    )
    parser.add_argument(
        "--watermark", type=int, default=64, metavar="N",
        help="GC trigger watermark (default 64)",
    )
    parser.add_argument(
        "--refill-blocks", type=int, default=256, metavar="N",
        help="blocks per OS refill trap (small => recurring GC phases)",
    )
    parser.add_argument(
        "--watchdog", type=int, default=0, metavar="CYCLES",
        help="arm the live deadlock watchdog at this period (0 = off)",
    )
    parser.add_argument(
        "--fault", action="append", default=[], metavar="KIND:AT[:SPAN[:VALUE[:ARG]]]",
        help="inject a deterministic fault (repeatable); see repro.faults",
    )
    parser.add_argument(
        "--capacity", type=int, default=1 << 18, metavar="EVENTS",
        help="op-trace ring-buffer capacity (default 262144)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        faults = tuple(_parse_fault(text) for text in args.fault)
        config = dataclasses.replace(
            TABLE2,
            metrics=True,
            free_list_blocks=args.free_blocks,
            gc_watermark=args.watermark,
            refill_blocks=args.refill_blocks,
            watchdog_cycles=args.watchdog,
            faults=faults,
        )
    except ConfigError as exc:
        parser.error(str(exc))
    scale = get_scale(args.scale)

    # The workload builds its machine internally, so the recorder attaches
    # through a machine observer; `seen` also guards against a workload
    # constructing more than one machine (none do today).
    state: dict = {}

    def observe(machine) -> None:
        if "recorder" not in state:
            state["recorder"] = SpanRecorder(machine, capacity=args.capacity)

    add_machine_observer(observe)
    failure: str | None = None
    try:
        if args.workload in _IRREGULAR_MODULES:
            _run_irregular(
                args.workload, config, scale, args.size, MIXES[args.mix],
                "versioned", args.cores, args.ops,
            )
        else:
            _run_regular(
                args.workload, config, scale, args.size, "versioned", args.cores
            )
    except (DeadlockError, FreeListExhausted) as exc:
        failure = str(exc)
    finally:
        remove_machine_observer(observe)

    recorder: SpanRecorder | None = state.get("recorder")
    if recorder is None:
        print("no machine was built; nothing recorded", file=sys.stderr)
        return 2
    recorder.detach()  # also closes any spans a hang left open
    machine = recorder.machine

    if args.perfetto:
        from .perfetto import write_chrome_trace

        path = write_chrome_trace(recorder, args.perfetto)
        print(f"perfetto trace written to {path} (open at ui.perfetto.dev)")
    snapshot = machine.metrics.snapshot() if machine.metrics is not None else {}
    if args.metrics:
        with open(args.metrics, "w") as fh:
            json.dump(snapshot, fh, indent=2)
        print(f"metrics snapshot written to {args.metrics}")

    summary = recorder.summary()
    trace = summary.pop("trace")
    print(
        f"\n{args.workload} @ {args.cores} cores, {machine.sim.now} cycles: "
        + ", ".join(f"{k}={v}" for k, v in summary.items())
    )
    print(
        f"ops: recorded={trace['recorded']} buffered={trace['buffered']} "
        f"dropped={trace['dropped']} stalls={trace['buffered_stalled_ops']}"
    )
    print()
    print(format_critical_path(critical_path(recorder), recorder))
    print()
    print(format_metrics(snapshot, title=args.workload))

    if failure is not None:
        from ..sim import waitgraph

        print(f"\nRUN FAILED: {failure}", file=sys.stderr)
        print(waitgraph.post_mortem(machine), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
