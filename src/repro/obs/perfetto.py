"""Chrome trace-event (Perfetto) JSON export of a recorded run.

Emits the JSON-object flavour of the Chrome trace-event format —
``{"traceEvents": [...]}`` — which ``ui.perfetto.dev`` and
``chrome://tracing`` both load directly.  Mapping:

- one process (pid 0) named for the run; one thread (tid) per core, plus
  one synthetic track each for the garbage collector and the watchdog;
- task executions and buffered micro-ops are complete events (``"X"``,
  with ``ts``/``dur``); micro-ops nest inside their task's span because
  an in-order core retires ops strictly within the task interval;
- stalls, emergency collections and watchdog recoveries are instant
  events (``"i"``);
- **timestamps are simulated cycles presented as microseconds** (the
  format's ``ts`` unit).  Durations read as "µs" in the UI are cycles;
  only ratios matter for analysis, and cycles are the honest unit.

The export is pure data transformation — build a machine with a
:class:`~repro.obs.recorder.SpanRecorder`, run it, then call
:func:`chrome_trace` (or :func:`write_chrome_trace`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from .recorder import SpanRecorder

#: pid of the single simulated process in the exported trace.
PID = 0


def _metadata(name: str, tid: int | None, value: str) -> dict[str, Any]:
    ev: dict[str, Any] = {
        "ph": "M",
        "pid": PID,
        "name": name,
        "args": {"name": value},
    }
    if tid is not None:
        ev["tid"] = tid
    return ev


def chrome_trace(recorder: "SpanRecorder") -> dict[str, Any]:
    """The complete trace document as a JSON-able dict."""
    machine = recorder.machine
    num_cores = machine.config.num_cores
    gc_tid = num_cores
    watchdog_tid = num_cores + 1
    events: list[dict[str, Any]] = [
        _metadata("process_name", None, "repro-sim"),
    ]
    for core_id in range(num_cores):
        events.append(_metadata("thread_name", core_id, f"core {core_id}"))
    events.append(_metadata("thread_name", gc_tid, "gc"))
    events.append(_metadata("thread_name", watchdog_tid, "watchdog"))

    for span in recorder.task_spans:
        end = span.end if span.end is not None else machine.sim.now
        events.append(
            {
                "ph": "X",
                "pid": PID,
                "tid": span.core,
                "ts": span.start,
                "dur": end - span.start,
                "name": f"task {span.task}",
                "cat": "task",
                "args": {"task": span.task, "outcome": span.outcome},
            }
        )

    for ev in recorder.tracer.events():
        if ev.stalled:
            events.append(
                {
                    "ph": "i",
                    "pid": PID,
                    "tid": ev.core,
                    "ts": ev.cycle,
                    "s": "t",
                    "name": f"stall {ev.op}",
                    "cat": "stall",
                    "args": {"task": ev.task, "addr": ev.addr},
                }
            )
            continue
        events.append(
            {
                "ph": "X",
                "pid": PID,
                "tid": ev.core,
                "ts": ev.cycle,
                "dur": ev.latency,
                "name": ev.op,
                "cat": "op",
                "args": {"task": ev.task, "addr": ev.addr},
            }
        )

    for span in recorder.gc_spans:
        if span.kind == "emergency":
            events.append(
                {
                    "ph": "i",
                    "pid": PID,
                    "tid": gc_tid,
                    "ts": span.start,
                    "s": "t",
                    "name": "emergency collect",
                    "cat": "gc",
                }
            )
            continue
        end = span.end if span.end is not None else machine.sim.now
        events.append(
            {
                "ph": "X",
                "pid": PID,
                "tid": gc_tid,
                "ts": span.start,
                "dur": end - span.start,
                "name": "gc phase",
                "cat": "gc",
            }
        )

    for rec in recorder.recovery_events:
        events.append(
            {
                "ph": "i",
                "pid": PID,
                "tid": watchdog_tid,
                "ts": rec.cycle,
                "s": "p",  # process-scoped: recoveries affect other tracks
                "name": f"watchdog {rec.event}",
                "cat": "recovery",
                "args": rec.info,
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "timebase": "1 ts = 1 simulated cycle",
            "cycles": machine.sim.now,
            "cores": num_cores,
        },
    }


def write_chrome_trace(recorder: "SpanRecorder", path: str | Path) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    out = Path(path)
    out.write_text(json.dumps(chrome_trace(recorder)))
    return out
