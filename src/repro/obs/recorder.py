"""Span recording over one machine: tasks, GC phases, recoveries, edges.

The per-op :class:`~repro.sim.trace.Tracer` answers "what did core 3 do
at cycle 12 000?"; a :class:`SpanRecorder` answers the *interval*
questions a timeline viewer needs — when did task 17 run and on which
core, how long was the GC phase that overlapped it, which waiter did the
watchdog abort.  It attaches through the machine's hook points (all
chainable, so it coexists with a user Tracer and the sanitizer):

- a chained :class:`Tracer` buffers retired ops for the Perfetto export;
- ``machine.task_hook`` delivers TASK-BEGIN / TASK-END / abort events,
  which become :class:`TaskSpan` intervals per core;
- ``gc.phase_hooks`` bracket collection phases (emergency collections
  are instants);
- ``machine.recovery_hook`` captures watchdog trips, aborts, kicks;
- a lightweight edge hook (plus two wrapped manager methods, needed to
  learn which version a LOAD-LATEST actually resolved to) records the
  version produce→consume relation that
  :mod:`repro.obs.critpath` turns into the critical path.

``finish()`` closes any still-open spans (a deadlocked run leaves its
victims open — exactly what the timeline should show) and ``detach()``
restores every hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..ostruct import isa
from ..sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.machine import Machine


@dataclass(slots=True)
class TaskSpan:
    """One task execution interval on one core."""

    task: int
    core: int
    start: int
    end: int | None = None
    #: "finished", "aborted", or "open" (never closed — deadlock victim).
    outcome: str = "open"

    @property
    def duration(self) -> int:
        return 0 if self.end is None else self.end - self.start


@dataclass(slots=True)
class GcSpan:
    """One collection phase interval ("phase") or instant ("emergency")."""

    kind: str
    start: int
    end: int | None = None


@dataclass(slots=True)
class RecoveryEvent:
    """One watchdog observation (trip / abort / kick / gave_up)."""

    cycle: int
    event: str
    info: dict


class SpanRecorder:
    """Records spans and dependency edges from one machine's run."""

    def __init__(self, machine: "Machine", capacity: int = 1 << 18):
        self.machine = machine
        self.tracer = Tracer(machine, capacity=capacity)
        self.task_spans: list[TaskSpan] = []
        self.gc_spans: list[GcSpan] = []
        self.recovery_events: list[RecoveryEvent] = []
        #: (vaddr, version) -> (producer task id, cycle).
        self.produces: dict[tuple[int, int], tuple[int | None, int]] = {}
        #: (consumer task id, vaddr, version, cycle).
        self.consumes: list[tuple[int, int, int, int]] = []
        self._open_tasks: dict[int, TaskSpan] = {}  # core -> span
        self._open_gc: GcSpan | None = None
        self._detached = False

        # Stable bound-method objects: attribute access creates a fresh
        # bound method each time, so detach()'s identity checks need the
        # exact objects that were attached.
        self._task_hook = self._on_task
        self._recovery_hook = self._on_recovery
        self._drop_hook = self._on_drop
        machine.add_trace_hook(self._edge_hook)
        if machine.task_hook is not None:
            raise RuntimeError("machine already has a task hook attached")
        machine.task_hook = self._task_hook
        if machine.recovery_hook is not None:
            raise RuntimeError("machine already has a recovery hook attached")
        machine.recovery_hook = self._recovery_hook
        machine.gc.phase_hooks.append(self._on_gc_phase)
        # An aborted task's uncommitted versions are rolled back; their
        # produce edges must be forgotten with them, or the critical-path
        # DP would run paths through stores that never happened (the
        # abort's retry re-records the real edge when it commits).
        machine.manager.drop_hooks.append(self._drop_hook)
        # LOAD-LATEST ops name a cap, not a version; the consume edge
        # needs the version the lookup resolved to, which only the
        # manager's return value carries.  Wrap the two latest-family
        # methods with instance attributes (the same monkeypatch idiom
        # the sanitizer uses) and record the resolved version.
        mgr = machine.manager
        # Remember whether the methods were already instance attributes
        # (e.g. sanitizer wrappers): detach() then restores the captured
        # callables; otherwise it deletes our instance attributes so the
        # plain class methods show through again.
        self._mgr_had_instance_methods = "load_latest" in vars(mgr)
        self._orig_load_latest = mgr.load_latest
        self._orig_lock_load_latest = mgr.lock_load_latest

        def load_latest(core_id: int, vaddr: int, cap: int):
            out = self._orig_load_latest(core_id, vaddr, cap)
            self._consume_resolved(core_id, vaddr, out[1][0])
            return out

        def lock_load_latest(core_id: int, vaddr: int, cap: int, task_id: int):
            out = self._orig_lock_load_latest(core_id, vaddr, cap, task_id)
            self._consume_resolved(core_id, vaddr, out[1][0])
            return out

        self._wrapped_load_latest = load_latest
        self._wrapped_lock_load_latest = lock_load_latest
        mgr.load_latest = load_latest
        mgr.lock_load_latest = lock_load_latest

    # -- hook bodies ----------------------------------------------------------

    def _now(self) -> int:
        return self.machine.sim.now

    def _on_task(self, event: str, task_id: int, core_id: int) -> None:
        if event == "begin":
            stale = self._open_tasks.pop(core_id, None)
            if stale is not None:  # defensive: never lose a span
                stale.end = self._now()
            span = TaskSpan(task=task_id, core=core_id, start=self._now())
            self._open_tasks[core_id] = span
            self.task_spans.append(span)
            return
        span = self._open_tasks.pop(core_id, None)
        if span is None:
            return
        span.end = self._now()
        span.outcome = "finished" if event == "end" else "aborted"

    def _on_gc_phase(self, event: str) -> None:
        if event == "start":
            if self._open_gc is None:
                self._open_gc = GcSpan(kind="phase", start=self._now())
                self.gc_spans.append(self._open_gc)
        elif event == "end":
            if self._open_gc is not None:
                self._open_gc.end = self._now()
                self._open_gc = None
        elif event == "emergency":
            now = self._now()
            self.gc_spans.append(GcSpan(kind="emergency", start=now, end=now))

    def _on_recovery(self, event: str, info: dict) -> None:
        self.recovery_events.append(RecoveryEvent(self._now(), event, dict(info)))

    def _on_drop(self, vaddr: int, version: int) -> None:
        self.produces.pop((vaddr, version), None)

    def _edge_hook(
        self,
        core: int,
        task: int | None,
        op_tuple: tuple,
        latency: int,
        stalled: bool,
    ) -> None:
        if stalled:
            return
        kind = op_tuple[0]
        if kind == isa.STORE_VERSION:
            self.produces[(op_tuple[1], op_tuple[2])] = (task, self._now())
        elif kind == isa.UNLOCK_VERSION:
            if op_tuple[3] is not None:  # renaming produces a new version
                self.produces[(op_tuple[1], op_tuple[3])] = (task, self._now())
        elif kind in (isa.LOAD_VERSION, isa.LOCK_LOAD_VERSION):
            if task is not None:
                self.consumes.append((task, op_tuple[1], op_tuple[2], self._now()))

    def _consume_resolved(self, core_id: int, vaddr: int, version: int) -> None:
        core = self.machine.cores[core_id]
        if core.current is not None:
            self.consumes.append(
                (core.current.task_id, vaddr, version, self._now())
            )

    # -- lifecycle ------------------------------------------------------------

    def finish(self) -> None:
        """Close still-open spans at the current cycle (run over or hung)."""
        now = self._now()
        for span in self._open_tasks.values():
            span.end = now
        self._open_tasks.clear()
        if self._open_gc is not None:
            self._open_gc.end = now
            self._open_gc = None

    def detach(self) -> None:
        """Restore every hook; safe to call once the run is over."""
        if self._detached:
            return
        self._detached = True
        self.finish()
        self.tracer.detach()
        self.machine.remove_trace_hook(self._edge_hook)
        if self.machine.task_hook is self._task_hook:
            self.machine.task_hook = None
        if self.machine.recovery_hook is self._recovery_hook:
            self.machine.recovery_hook = None
        try:
            self.machine.gc.phase_hooks.remove(self._on_gc_phase)
        except ValueError:
            pass
        try:
            self.machine.manager.drop_hooks.remove(self._drop_hook)
        except ValueError:
            pass
        mgr = self.machine.manager
        # Only restore if nothing wrapped the method after us (the
        # sanitizer uses the same instance-attribute idiom).
        if mgr.load_latest is self._wrapped_load_latest:
            if self._mgr_had_instance_methods:
                mgr.load_latest = self._orig_load_latest
            else:
                del mgr.load_latest
        if mgr.lock_load_latest is self._wrapped_lock_load_latest:
            if self._mgr_had_instance_methods:
                mgr.lock_load_latest = self._orig_lock_load_latest
            else:
                del mgr.lock_load_latest

    # -- summaries ------------------------------------------------------------

    def task_cycles(self) -> dict[int, int]:
        """Total recorded execution cycles per task id (spans summed)."""
        totals: dict[int, int] = {}
        for span in self.task_spans:
            totals[span.task] = totals.get(span.task, 0) + span.duration
        return totals

    def summary(self) -> dict[str, Any]:
        return {
            "task_spans": len(self.task_spans),
            "gc_spans": len(self.gc_spans),
            "recovery_events": len(self.recovery_events),
            "produce_edges": len(self.produces),
            "consume_edges": len(self.consumes),
            "trace": self.tracer.summary(),
        }
