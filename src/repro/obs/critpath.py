"""Critical-path analysis over the recorded produce→consume task DAG.

Every ``STORE-VERSION`` (and every renaming ``UNLOCK-VERSION``) names a
producer of ``(vaddr, version)``; every ``LOAD-VERSION`` /
``LOCK-LOAD-VERSION`` (and the resolved version of a latest-family load)
names a consumer.  Matching the two gives the dataflow edges of the task
graph the workload actually executed — the same dependence structure the
paper's versioned memory exists to honour.  The longest weighted chain
through that DAG (node weight = the task's recorded execution cycles) is
the run's *task-granular* critical path: no schedule in which a
consumer must wait for its producer task to **finish** completes
earlier.  The O-structure machine is not such a schedule — a consumer's
``LOAD-VERSION`` unblocks the moment the producer *stores* the version,
mid-task — so a recorded makespan **below** the task-granular critical
path is the paper's fine-grained synchronisation visibly beating
task-level dependency scheduling.  ``total_work / makespan`` is the
parallelism realised; ``total_work / critical_path`` is what a
task-barrier runtime could have achieved at best.

Rule 1 of the runtime (producers of version ``v`` have task id ≤ ``v``,
and consumers of ``v`` have id > the producer's) makes the edge relation
acyclic for well-formed programs; defensively, any edge that violates
the id ordering (possible under fault injection or aborted/retried
tasks) is dropped rather than allowed to create a cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import networkx as nx

from ..harness.report import format_table

if TYPE_CHECKING:  # pragma: no cover
    from .recorder import SpanRecorder


def dependency_edges(recorder: "SpanRecorder") -> set[tuple[int, int]]:
    """Distinct producer→consumer task-id edges from the recorded run."""
    edges: set[tuple[int, int]] = set()
    produces = recorder.produces
    for consumer, vaddr, version, _cycle in recorder.consumes:
        entry = produces.get((vaddr, version))
        if entry is None:
            continue  # version pre-existed the recording (e.g. init data)
        producer = entry[0]
        if producer is None or producer == consumer:
            continue
        if producer > consumer:
            continue  # violates rule 1 ordering; cannot be a real dependence
        edges.add((producer, consumer))
    return edges


def critical_path(recorder: "SpanRecorder") -> dict[str, Any]:
    """The longest weighted dependency chain through the recorded tasks.

    Returns a dict with the chain itself (task ids in execution order),
    its length in cycles, the run's makespan, the summed task work, and
    the realised / available parallelism ratios.
    """
    weights = recorder.task_cycles()
    edges = dependency_edges(recorder)
    graph: nx.DiGraph = nx.DiGraph()
    graph.add_nodes_from(weights)
    graph.add_edges_from((u, v) for u, v in edges if u in weights and v in weights)

    # Longest path by summed node weight, via DP in topological order.
    dist: dict[int, int] = {}
    prev: dict[int, int | None] = {}
    for node in nx.topological_sort(graph):
        best_pred, best = None, 0
        for pred in graph.predecessors(node):
            if dist[pred] > best:
                best_pred, best = pred, dist[pred]
        dist[node] = best + weights.get(node, 0)
        prev[node] = best_pred

    chain: list[int] = []
    length = 0
    if dist:
        tail = max(dist, key=dist.__getitem__)
        length = dist[tail]
        node: int | None = tail
        while node is not None:
            chain.append(node)
            node = prev[node]
        chain.reverse()

    makespan = recorder.machine.sim.now
    total_work = sum(weights.values())
    return {
        "chain": chain,
        "length_cycles": length,
        "makespan": makespan,
        "total_task_cycles": total_work,
        "parallelism": (total_work / makespan) if makespan else 0.0,
        "task_granular_parallelism": (total_work / length) if length else 0.0,
        "tasks": len(weights),
        "edges": len(edges),
    }


def format_critical_path(result: dict[str, Any], recorder: "SpanRecorder") -> str:
    """Human-readable rendition of a :func:`critical_path` result."""
    weights = recorder.task_cycles()
    summary = format_table(
        ("tasks", "edges", "makespan", "crit path", "total work",
         "realised ||ism", "task-granular ||ism"),
        [(
            result["tasks"],
            result["edges"],
            result["makespan"],
            result["length_cycles"],
            result["total_task_cycles"],
            result["parallelism"],
            result["task_granular_parallelism"],
        )],
        title="critical path (task-granular; makespan below it = "
              "fine-grained versioned sync paying off)",
    )
    chain = result["chain"]
    if not chain:
        return summary
    rows = [(task, weights.get(task, 0)) for task in chain]
    chain_table = format_table(
        ("task", "cycles"), rows, title=f"longest chain ({len(chain)} tasks)"
    )
    return f"{summary}\n\n{chain_table}"
