"""Wire a :class:`~repro.obs.metrics.MetricsRegistry` into a machine.

The instruments live where the events happen — the manager's lookup and
allocation paths, the core's stall-resolution path, the rwlock's grant
path — each behind a single ``metrics is not None`` attribute check.
This module only *connects* them: it creates the registry, hands it to
the manager and machine, and registers the GC hooks that turn shadow and
reclaim events into the reclamation-lag histogram.

Attach before ``machine.run()``; instruments attached mid-run simply
miss earlier events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.machine import Machine


def attach_metrics(machine: "Machine") -> MetricsRegistry:
    """Create a registry and point every instrumented site at it.

    Returns the registry (also available as ``machine.metrics``).
    Idempotent: a machine that already carries a registry keeps it.
    """
    if machine.metrics is not None:
        return machine.metrics
    registry = MetricsRegistry()
    machine.metrics = registry
    machine.manager.metrics = registry

    # GC reclamation lag: cycles between a version becoming shadowed and
    # its block returning to the free list.  The collector knows nothing
    # about simulated time, so the pairing lives here.
    shadow_cycle: dict[tuple[int, int], int] = {}
    sim = machine.sim

    def on_shadow(vaddr: int, version: int) -> None:
        shadow_cycle[(vaddr, version)] = sim.now

    def on_reclaim(vaddr: int, version: int) -> None:
        start = shadow_cycle.pop((vaddr, version), None)
        if start is not None:
            registry.gc_lag.observe(sim.now - start)
        registry.counter("gc_reclaims").inc()

    def on_drop(vaddr: int, version: int) -> None:
        # Abort rollback removed the version outside the GC: it will
        # never be reclaimed, so its shadow timestamp must not leak.
        shadow_cycle.pop((vaddr, version), None)

    machine.gc.shadow_hooks.append(on_shadow)
    machine.gc.reclaim_hooks.append(on_reclaim)
    machine.manager.drop_hooks.append(on_drop)
    return registry
