"""Legacy setuptools shim.

``pip install -e . --no-build-isolation`` needs the ``wheel`` package for
PEP 660 editable installs; on environments without it, use::

    python setup.py develop
"""

from setuptools import setup

setup()
