#!/usr/bin/env python3
"""Quickstart: versioned memory in five minutes.

Demonstrates the core O-structure semantics on a 2-core simulated machine:

1. a consumer's LOAD-VERSION blocks until the producer's STORE-VERSION
   creates the version (true-dependency enforcement);
2. out-of-order version creation (renaming): version 2 is usable before
   version 1 exists;
3. LOCK-LOAD / UNLOCK with renaming — the hand-over-hand baton.

Run:  python examples/quickstart.py
"""

from repro import Machine, MachineConfig, Task, Versioned
from repro.ostruct import isa


def demo_producer_consumer() -> None:
    machine = Machine(MachineConfig(num_cores=2))
    cell = Versioned(machine.heap.alloc_versioned(1))

    def producer(tid):
        yield isa.compute(5000)  # pretend to work; the consumer must wait
        yield cell.store_ver(tid, 42)

    def consumer(tid):
        value = yield cell.load_ver(0)  # blocks until version 0 exists
        return value

    tasks = [Task(0, producer), Task(1, consumer)]
    machine.submit(tasks)
    stats = machine.run()
    print("1) producer/consumer")
    print(f"   consumer read {tasks[1].result} after stalling "
          f"{stats.versioned_stall_cycles} cycles")
    assert tasks[1].result == 42


def demo_out_of_order_versions() -> None:
    machine = Machine(MachineConfig(num_cores=1))
    cell = Versioned(machine.heap.alloc_versioned(1))

    def program(tid):
        yield cell.store_ver(2, "second")   # version 2 created first
        v2 = yield cell.load_ver(2)         # readable immediately
        yield cell.store_ver(1, "first")    # version 1 arrives later
        v1 = yield cell.load_ver(1)
        latest = yield cell.load_last(10)   # (version, value)
        return v1, v2, latest

    task = machine.submit_main(program)
    machine.run()
    v1, v2, latest = task.result
    print("2) out-of-order creation (renaming)")
    print(f"   v1={v1!r} v2={v2!r} latest={latest!r}")
    assert latest == (2, "second")


def demo_lock_handoff() -> None:
    machine = Machine(MachineConfig(num_cores=2))
    cell = Versioned(machine.heap.alloc_versioned(1))
    order = []

    def first(tid):
        yield cell.store_ver(0, 10)
        yield cell.lock_load_ver(tid)          # lock version 0
        yield isa.compute(4000)
        order.append("first done")
        yield cell.unlock_ver(tid, tid + 1)    # rename: creates version 1

    def second(tid):
        value = yield cell.lock_load_ver(tid)  # waits for version 1
        order.append("second entered")
        yield cell.unlock_ver(tid)
        return value

    tasks = [Task(0, first), Task(1, second)]
    machine.submit(tasks)
    machine.run()
    print("3) lock handoff with renaming")
    print(f"   order: {order}; second read {tasks[1].result}")
    assert order == ["first done", "second entered"]


if __name__ == "__main__":
    demo_producer_consumer()
    demo_out_of_order_versions()
    demo_lock_handoff()
    print("quickstart OK")
