#!/usr/bin/env python3
"""The software O-structure prototype on real threads (Section II-C).

The paper notes O-structures can be implemented "purely as a software
runtime abstraction" (they built one before concluding hardware support
was needed for performance).  This example runs that prototype: a
16-task pipelined counter chain and a producer/consumer DAG on a real
thread pool, with versions, locking and renaming doing the
synchronisation — no explicit locks or queues in user code.

Run:  python examples/sw_runtime_threads.py
"""

from repro.sw import SWRuntime

N_TASKS = 16


def pipelined_chain() -> None:
    """Each task increments the value left by its predecessor.

    Task t exact-locks version t (created by task t-1's renaming unlock),
    adds its contribution, stores version t+1 — a software rendition of
    the Figure 1 baton.
    """
    with SWRuntime(num_workers=8) as rt:
        cell = rt.new_ostructure("chain")
        cell.store_version(0, 0)

        def body(ctx):
            t = ctx.task_id
            value = cell.lock_load_version(t, ctx.task_id)
            cell.unlock_version(t, ctx.task_id, new_version=None)
            cell.store_version(t + 1, value + (t + 1))
            return value

        futures = [rt.spawn(t, body) for t in range(N_TASKS)]
        results = [f.result() for f in futures]
        final = cell.load_version(N_TASKS)

    expected = sum(range(1, N_TASKS + 1))  # 1+2+...+16
    assert final == expected, (final, expected)
    # Task t observed the running total of its predecessors.
    assert results == [sum(range(1, t + 1)) for t in range(N_TASKS)]
    print(f"1) pipelined chain of {N_TASKS} tasks -> {final} "
          f"(= 1+2+...+{N_TASKS}) with versions as the only synchronisation")


def producer_consumer_dag() -> None:
    """A diamond DAG: two producers, one consumer joining both."""
    with SWRuntime(num_workers=4) as rt:
        left = rt.new_ostructure("left")
        right = rt.new_ostructure("right")

        def produce_left(ctx):
            left.store_version(ctx.task_id, 21)

        def produce_right(ctx):
            right.store_version(ctx.task_id, 2)

        def consume(ctx):
            a = left.load_latest(ctx.task_id)[1]    # blocks until produced
            b = right.load_latest(ctx.task_id)[1]
            return a * b

        rt.spawn(0, produce_left)
        rt.spawn(1, produce_right)
        answer = rt.spawn(2, consume).result()

    assert answer == 42
    print(f"2) dataflow diamond joined to {answer} "
          f"(consumer blocked on both producers)")


def snapshot_reads() -> None:
    """Readers pinned to old versions keep seeing them after new stores."""
    with SWRuntime(num_workers=2) as rt:
        cell = rt.new_ostructure("snap")
        for v, val in [(1, "v1"), (5, "v5"), (9, "v9")]:
            cell.store_version(v, val)

        def reader(ctx):
            return cell.load_latest(ctx.task_id)[1]

        r3 = rt.spawn(3, reader).result()
        r7 = rt.spawn(7, reader).result()
        r9 = rt.spawn(9, reader).result()

    assert (r3, r7, r9) == ("v1", "v5", "v9")
    print("3) snapshot reads: task 3 sees v1, task 7 sees v5, task 9 sees v9")


if __name__ == "__main__":
    pipelined_chain()
    producer_consumer_dag()
    snapshot_reads()
    print("software runtime OK")
