#!/usr/bin/env python3
"""Chained matrix multiplication as a dataflow pipeline (Section IV-B).

R = (A @ B) @ C with every element of the intermediate T = A @ B stored
as a write-once O-structure version (an I-structure).  Consumer rows
issue LOAD-VERSION on T's elements and stall until the producer row
stores them — the two multiplication stages overlap with no explicit
synchronisation, and the result is bit-identical to NumPy.

Run:  python examples/matmul_versioned.py
"""

import numpy as np

from repro import TABLE2
from repro.workloads import matmul

N = 16


def main() -> None:
    a, b, c = matmul.make_inputs(N, seed=42)
    expected = matmul.reference(a, b, c)

    unv = matmul.run_unversioned(TABLE2, N, seed=42)
    v1 = matmul.run_versioned(TABLE2, N, 1, seed=42)
    v16 = matmul.run_versioned(TABLE2, N, 16, seed=42)

    for run in (unv, v1, v16):
        assert np.array_equal(run.final_state, expected), run.variant

    print(f"{N}x{N} chained multiply, all variants == NumPy reference")
    print(f"  sequential unversioned : {unv.cycles:>9,} cycles")
    print(f"  sequential versioned   : {v1.cycles:>9,} cycles "
          f"({v1.cycles / unv.cycles:.2f}x overhead — the Figure 6 "
          f"single-thread versioning cost)")
    print(f"  16-core versioned      : {v16.cycles:>9,} cycles "
          f"({unv.cycles / v16.cycles:.2f}x faster than unversioned)")

    s = v16.stats
    print(f"  dataflow stalls: {s.versioned_stalls} "
          f"(consumer rows waiting on producer elements)")
    print(f"  direct-access hit rate: {s.direct_hit_rate:.1%}")
    assert unv.cycles / v16.cycles > 1.0


if __name__ == "__main__":
    main()
