#!/usr/bin/env python3
"""Figure 1: parallelizing sequential insertions into a linked list.

The paper's motivating example — N tasks each append a node at the end of
a singly linked list.  Sequentially this is a chain of dependent
traversals; with O-structures the tasks *pipeline* down the list using
hand-over-hand LOCK-LOAD-LATEST and renaming UNLOCK-VERSION, and the
result is identical to the sequential execution.

This reproduces the right-hand column of Figure 1 (the library API) with
:class:`repro.Versioned` handles, then shows the pipeline parallelism by
comparing 1-core and 8-core cycle counts.

Run:  python examples/linked_list_pipeline.py
"""

from repro import Machine, MachineConfig, Task, Versioned
from repro.ostruct import isa

N_INSERTS = 24


def build_machine(num_cores: int) -> tuple[Machine, dict]:
    """A list whose nodes carry a payload and a versioned next pointer."""
    machine = Machine(MachineConfig(num_cores=num_cores))
    state = {
        "machine": machine,
        # root/next pointers are O-structures; node payloads conventional.
        "root": Versioned(machine.heap.alloc_versioned(1)),
        "next_of": {},   # node id -> Versioned next pointer
        "payload": {},   # node id -> value
        "n_nodes": 0,
    }

    def new_node(value):
        state["n_nodes"] += 1
        nid = state["n_nodes"]
        state["next_of"][nid] = Versioned(machine.heap.alloc_versioned(1))
        state["payload"][nid] = value
        return nid

    state["new_node"] = new_node
    # Initial list: one sentinel node.  The root pointer starts at the
    # *first task's* version (task 1 exact-locks version 1; later versions
    # come from each task's renaming unlock); interior pointers start at
    # version 0, below every task id.
    first = new_node("head")
    machine.manager.store_version(0, state["root"].addr, 1, first)
    machine.manager.store_version(0, state["next_of"][first].addr, 0, 0)
    return machine, state


def insert_end(tid, state):
    """The Figure 1 task body: append a new node at the end of the list.

    ``lock_load_ver(tid)`` orders entry; ``lock_load_last`` +
    ``unlock_ver(v, tid + 1)`` is the hand-over-hand/renaming walk —
    task t+1 follows one hop behind task t.
    """
    root, next_of = state["root"], state["next_of"]
    nid = state["new_node"](f"node-{tid}")
    yield isa.compute(20)

    # Enter at the root: exact version = this task's id (created by the
    # predecessor's renaming unlock; version 0 comes from initialisation).
    cur = yield root.lock_load_ver(tid)
    prev_field, prev_ver = root, tid
    while cur != 0:
        nv, nxt = yield next_of[cur].lock_load_last(tid)
        # Unlock the previous hop, renaming it for the next task.
        yield prev_field.unlock_ver(prev_ver, tid + 1)
        prev_field, prev_ver = next_of[cur], nv
        cur = nxt
    # prev_field is the tail's next pointer (value 0, locked): append.
    # The store *is* the handoff — the next task's LOCK-LOAD-LATEST picks
    # the new version; the old one is unlocked without renaming (renaming
    # here would resurrect the stale null above the new node).
    yield next_of[nid].store_ver(tid, 0)
    yield prev_field.store_ver(tid, nid)
    yield prev_field.unlock_ver(prev_ver)


def run(num_cores: int) -> tuple[int, list]:
    machine, state = build_machine(num_cores)
    tasks = [Task(tid, insert_end, state) for tid in range(1, N_INSERTS + 1)]
    machine.submit(tasks)
    stats = machine.run()

    # Walk the final list functionally.
    mgr = machine.manager
    out = []
    cur = mgr.lists[state["root"].addr].find_latest(1 << 30)[0].value
    while cur:
        out.append(state["payload"][cur])
        lst = mgr.lists[state["next_of"][cur].addr]
        cur = lst.find_latest(1 << 30)[0].value
    return stats.cycles, out


if __name__ == "__main__":
    seq_cycles, seq_list = run(1)
    par_cycles, par_list = run(8)
    expected = ["head"] + [f"node-{t}" for t in range(1, N_INSERTS + 1)]
    assert seq_list == expected, seq_list
    assert par_list == expected, par_list
    print(f"list after {N_INSERTS} pipelined insertions: "
          f"{par_list[:3]} ... {par_list[-2:]}")
    print(f"1 core:  {seq_cycles} cycles")
    print(f"8 cores: {par_cycles} cycles  "
          f"({seq_cycles / par_cycles:.2f}x — tasks pipeline down the list)")
    assert par_cycles < seq_cycles
    print("identical results, in sequential program order — Figure 1 works")
