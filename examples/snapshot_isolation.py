#!/usr/bin/env python3
"""Snapshot isolation: versioned binary tree vs a read-write lock (Fig. 8).

Runs the same 3:1 scan:insert stream over

- a versioned BST where scans traverse a consistent LOAD-LATEST snapshot
  while inserts rename pointers (readers and writers overlap), and
- an unversioned BST where a read-write lock separates the two classes,

then shows the cycle counts at 1 and 16 cores and verifies that the
versioned scans are *serializable*: every scan result equals what the
sequential program would have produced at that point.

Run:  python examples/snapshot_isolation.py
"""

from repro import TABLE2
from repro.workloads import binary_tree, rwlock_tree
from repro.workloads.opgen import (
    OpMix,
    SCAN,
    generate_ops,
    initial_keys,
    reference_results,
)

ELEMENTS = 400
OPS = 128
SCAN_RANGE = 8


def main() -> None:
    init = initial_keys(ELEMENTS, 4 * ELEMENTS, seed=8)
    ops = generate_ops(
        OPS, OpMix(reads=3, writes=1, name="3S-1W"), 4 * ELEMENTS, seed=8,
        read_op=SCAN, scan_range=SCAN_RANGE,
    )
    ops = [(op if op != "delete" else "insert", k, e) for op, k, e in ops]
    expected_results, expected_final = reference_results(init, ops)

    v1 = binary_tree.run_versioned(TABLE2, init, ops, 1)
    v16 = binary_tree.run_versioned(TABLE2, init, ops, 16)
    r1 = rwlock_tree.run_rwlock(TABLE2, init, ops, 1)
    r16 = rwlock_tree.run_rwlock(TABLE2, init, ops, 16)

    # Serializability of the versioned runs: results match the sequential
    # program exactly, even with scans and inserts overlapping on 16 cores.
    assert v16.results == expected_results
    assert v16.final_state == expected_final

    print(f"binary tree, {ELEMENTS} initial keys, {OPS} ops "
          f"(3 scans of range {SCAN_RANGE} per insert)\n")
    print(f"  {'':24}{'1 core':>12}{'16 cores':>12}")
    print(f"  {'versioned (snapshots)':24}{v1.cycles:>12,}{v16.cycles:>12,}")
    print(f"  {'rwlock (separation)':24}{r1.cycles:>12,}{r16.cycles:>12,}")
    ratio1 = r1.cycles / v1.cycles
    ratio16 = r16.cycles / v16.cycles
    print(f"\n  versioned/rwlock performance ratio: "
          f"{ratio1:.2f}x at 1 core -> {ratio16:.2f}x at 16 cores")
    print("  (the paper's Figure 8 shape: versioning costs on one core, "
          "wins once scans overlap inserts)")
    print(f"\n  every one of the {sum(1 for o in ops if o[0] == SCAN)} "
          f"concurrent scans returned exactly its sequential-order snapshot")


if __name__ == "__main__":
    main()
